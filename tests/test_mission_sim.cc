/**
 * @file
 * Tests for the Monte-Carlo mission simulator, the per-layer run report
 * and the hover-endurance physics cross-check.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/e2e_template.h"
#include "systolic/cycle_engine.h"
#include "systolic/run_report.h"
#include "uav/mission_sim.h"
#include "uav/uav_spec.h"

namespace uav = autopilot::uav;
namespace sys = autopilot::systolic;
namespace nn = autopilot::nn;

// --------------------------------------------------------- mission sim ---

TEST(MissionSim, MatchesAnalyticModelWithoutVariation)
{
    const uav::UavSpec nano = uav::zhangNano();
    uav::MissionVariation variation;
    variation.distanceSigma = 0.0;
    variation.headwindSigma = 0.0;
    variation.reserveFraction = 0.0;
    const uav::MissionSimulator simulator(nano, variation);

    const uav::MissionModel analytic(nano);
    const auto expected = analytic.evaluate(24.0, 0.8, 60.0, 60.0);
    ASSERT_TRUE(expected.feasible);

    autopilot::util::Rng rng(1);
    const auto sim = simulator.simulateCharge(24.0, 0.8, 60.0, 60.0, rng);
    // Whole missions only: the simulated count is the floor of the
    // analytic value.
    EXPECT_EQ(sim.completedMissions,
              static_cast<int>(std::floor(expected.numMissions)));
    EXPECT_LE(sim.energyUsedJ, nano.batteryEnergyJ());
}

TEST(MissionSim, ReserveReducesMissionCount)
{
    const uav::UavSpec nano = uav::zhangNano();
    uav::MissionVariation no_reserve;
    no_reserve.reserveFraction = 0.0;
    uav::MissionVariation big_reserve;
    big_reserve.reserveFraction = 0.3;
    autopilot::util::Rng rng_a(1), rng_b(1);
    const auto without =
        uav::MissionSimulator(nano, no_reserve)
            .simulateCharge(24.0, 0.8, 60.0, 60.0, rng_a);
    const auto with =
        uav::MissionSimulator(nano, big_reserve)
            .simulateCharge(24.0, 0.8, 60.0, 60.0, rng_b);
    EXPECT_GT(without.completedMissions, with.completedMissions);
    EXPECT_TRUE(with.endedOnReserve);
}

TEST(MissionSim, HeadwindsCostMissions)
{
    const uav::UavSpec nano = uav::zhangNano();
    uav::MissionVariation calm;
    uav::MissionVariation windy;
    windy.headwindSigma = 3.0;
    const auto calm_stats =
        uav::MissionSimulator(nano, calm)
            .simulateMany(24.0, 0.8, 60.0, 60.0, 50, 7);
    const auto windy_stats =
        uav::MissionSimulator(nano, windy)
            .simulateMany(24.0, 0.8, 60.0, 60.0, 50, 7);
    EXPECT_GT(calm_stats.meanMissions, windy_stats.meanMissions);
}

TEST(MissionSim, VariationSpreadsTheDistribution)
{
    const uav::UavSpec nano = uav::zhangNano();
    uav::MissionVariation variation;
    variation.distanceSigma = 0.25;
    const auto stats =
        uav::MissionSimulator(nano, variation)
            .simulateMany(24.0, 0.8, 60.0, 60.0, 60, 11);
    EXPECT_GT(stats.maxMissions, stats.minMissions);
    EXPECT_GT(stats.meanMissions, 0.0);
}

TEST(MissionSim, InfeasibleVehicleFliesNothing)
{
    const uav::UavSpec nano = uav::zhangNano();
    const uav::MissionSimulator simulator(nano, {});
    autopilot::util::Rng rng(3);
    const auto result =
        simulator.simulateCharge(300.0, 1.0, 60.0, 60.0, rng);
    EXPECT_EQ(result.completedMissions, 0);
}

// ------------------------------------------------------ hover endurance --

TEST(HoverEndurance, MatchesPublishedFlightTimes)
{
    // DJI Spark: ~14-16 min advertised; our physics should land in a
    // plausible band at the bare airframe mass.
    const uav::UavSpec spark = uav::djiSpark();
    const double endurance = spark.hoverEnduranceMinutes(300.0);
    EXPECT_GT(endurance, 6.0);
    EXPECT_LT(endurance, 35.0);

    const uav::UavSpec pelican = uav::ascTecPelican();
    const double mini = pelican.hoverEnduranceMinutes(1650.0);
    EXPECT_GT(mini, 5.0);
    EXPECT_LT(mini, 30.0);
}

TEST(HoverEndurance, PayloadShortensEndurance)
{
    const uav::UavSpec nano = uav::zhangNano();
    EXPECT_GT(nano.hoverEnduranceMinutes(55.0),
              nano.hoverEnduranceMinutes(120.0));
}

// ----------------------------------------------------------- run report --

TEST(RunReport, BreakdownCoversAllLayersAndTotals)
{
    sys::AcceleratorConfig config;
    const sys::CycleEngine engine(config);
    const nn::Model model = nn::buildE2EModel({4, 32});
    const sys::RunResult run = engine.run(model);

    std::ostringstream os;
    sys::printRunBreakdown(run, config, os);
    const std::string text = os.str();
    for (const nn::Layer &layer : model.layers())
        EXPECT_NE(text.find(layer.name), std::string::npos);
    EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

TEST(RunReport, DominantLayerAndStallFraction)
{
    sys::AcceleratorConfig config;
    config.peRows = 8;
    config.peCols = 8;
    const sys::CycleEngine engine(config);
    const sys::RunResult run = engine.run(nn::buildE2EModel({7, 48}));
    const std::string dominant = sys::dominantLayer(run);
    EXPECT_FALSE(dominant.empty());
    const double stalls = sys::stallFraction(run);
    EXPECT_GE(stalls, 0.0);
    EXPECT_LT(stalls, 1.0);
    // The dominant layer must actually hold the max cycle count.
    std::int64_t max_cycles = 0;
    for (const auto &layer : run.layers)
        max_cycles = std::max(max_cycles, layer.totalCycles);
    for (const auto &layer : run.layers) {
        if (layer.layerName == dominant) {
            EXPECT_EQ(layer.totalCycles, max_cycles);
        }
    }
}
