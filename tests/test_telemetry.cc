/**
 * @file
 * Tests for the run-telemetry subsystem: instrument semantics
 * (Counter/Gauge/Histogram), the MetricsRegistry, trace spans and their
 * Chrome trace-event JSON export, concurrent updates through the thread
 * pool, and the end-to-end contract that a telemetry-enabled pipeline
 * run emits the expected spans and cache counters.
 *
 * Telemetry is process-global, so every test runs under a fixture that
 * resets the registry/trace and restores the enabled flag.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "airlearning/trainer.h"
#include "core/autopilot.h"
#include "core/report.h"
#include "dse/evaluator.h"
#include "io/csv.h"
#include "io/json.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace util = autopilot::util;
namespace io = autopilot::io;
namespace al = autopilot::airlearning;
namespace dse = autopilot::dse;
namespace core = autopilot::core;

namespace
{

/** Reset global telemetry around each test (it is process-wide). */
class TelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        util::Telemetry::instance().reset();
        util::Telemetry::instance().setEnabled(false);
    }

    void TearDown() override
    {
        util::Telemetry::instance().reset();
        util::Telemetry::instance().setEnabled(false);
    }
};

/** Cheap Phase 1 database shared by the evaluator tests. */
const al::PolicyDatabase &
sharedDatabase()
{
    static const al::PolicyDatabase db = [] {
        al::TrainerConfig config;
        config.validationEpisodes = 40;
        const al::Trainer trainer(config);
        al::PolicyDatabase built;
        trainer.trainAll(autopilot::nn::PolicySpace(),
                         al::ObstacleDensity::Dense, built);
        return built;
    }();
    return db;
}

std::vector<dse::Encoding>
distinctEncodings(std::size_t count, std::uint64_t seed)
{
    const dse::DesignSpace space;
    util::Rng rng(seed);
    std::vector<dse::Encoding> out;
    std::set<dse::Encoding> seen;
    while (out.size() < count) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            out.push_back(encoding);
    }
    return out;
}

} // namespace

// -------------------------------------------------------- instruments ----

TEST_F(TelemetryTest, CounterAccumulates)
{
    util::Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
}

TEST_F(TelemetryTest, GaugeTracksValueAndHighWater)
{
    util::Gauge gauge;
    EXPECT_EQ(gauge.value(), 0);
    gauge.set(7);
    gauge.add(3);
    EXPECT_EQ(gauge.value(), 10);
    EXPECT_EQ(gauge.maxValue(), 10);
    gauge.add(-6);
    EXPECT_EQ(gauge.value(), 4);
    EXPECT_EQ(gauge.maxValue(), 10); // High water sticks.
    gauge.set(2);
    EXPECT_EQ(gauge.value(), 2);
    EXPECT_EQ(gauge.maxValue(), 10);
}

TEST_F(TelemetryTest, HistogramBucketsAndAggregates)
{
    util::Histogram hist({1.0, 10.0, 100.0});
    hist.record(0.5);   // Bucket 0 (<= 1).
    hist.record(1.0);   // Bucket 0 (bound is inclusive).
    hist.record(5.0);   // Bucket 1.
    hist.record(50.0);  // Bucket 2.
    hist.record(500.0); // Overflow.

    EXPECT_EQ(hist.count(), 5u);
    EXPECT_DOUBLE_EQ(hist.sum(), 556.5);
    EXPECT_DOUBLE_EQ(hist.min(), 0.5);
    EXPECT_DOUBLE_EQ(hist.max(), 500.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 556.5 / 5.0);

    const std::vector<std::uint64_t> counts = hist.bucketCounts();
    ASSERT_EQ(counts.size(), 4u); // 3 bounds + overflow.
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
}

TEST_F(TelemetryTest, EmptyHistogramReportsZeros)
{
    util::Histogram hist({1.0});
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.min(), 0.0);
    EXPECT_DOUBLE_EQ(hist.max(), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST_F(TelemetryTest, DefaultLatencyBoundsAreAscending)
{
    const std::vector<double> &bounds =
        util::Histogram::defaultLatencyBoundsSeconds();
    ASSERT_FALSE(bounds.empty());
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
    EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
    EXPECT_DOUBLE_EQ(bounds.back(), 10.0);
}

TEST_F(TelemetryTest, HistogramDeathOnBadBounds)
{
    EXPECT_EXIT(util::Histogram({}), ::testing::ExitedWithCode(1),
                "bucket bound");
    EXPECT_EXIT(util::Histogram({2.0, 1.0}),
                ::testing::ExitedWithCode(1), "ascending");
}

// ------------------------------------------------------------ registry ----

TEST_F(TelemetryTest, RegistryReturnsSameInstrumentForSameName)
{
    util::MetricsRegistry registry;
    util::Counter &a = registry.counter("events");
    util::Counter &b = registry.counter("events");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);

    util::Histogram &h1 = registry.histogram("lat");
    util::Histogram &h2 = registry.histogram("lat", {99.0});
    EXPECT_EQ(&h1, &h2); // Later bounds are ignored.
}

TEST_F(TelemetryTest, RegistrySnapshotSortedAndTyped)
{
    util::MetricsRegistry registry;
    registry.counter("z.count").add(5);
    registry.gauge("a.depth").set(3);
    registry.histogram("m.lat").record(0.25);

    const std::vector<util::MetricSample> samples = registry.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "a.depth");
    EXPECT_EQ(samples[0].kind, "gauge");
    EXPECT_EQ(samples[1].name, "m.lat");
    EXPECT_EQ(samples[1].kind, "histogram");
    EXPECT_EQ(samples[2].name, "z.count");
    EXPECT_EQ(samples[2].kind, "counter");
    EXPECT_DOUBLE_EQ(samples[2].value, 5.0);
    EXPECT_DOUBLE_EQ(samples[1].value, 0.25); // Histogram mean.

    const util::MetricSample found = registry.find("z.count");
    EXPECT_EQ(found.kind, "counter");
    EXPECT_EQ(found.count, 5u);
    EXPECT_EQ(registry.find("missing").kind, "");
}

TEST_F(TelemetryTest, RegistryCsvRoundTripsThroughReadCsv)
{
    util::MetricsRegistry registry;
    registry.counter("dse.cache.hit").add(12);
    registry.gauge("pool.queue_depth").set(4);
    registry.histogram("dse.simulate_s").record(0.5);

    std::ostringstream csv;
    registry.writeCsv(csv);
    std::istringstream is(csv.str());
    const auto rows = io::readCsv(
        is, {"name", "kind", "count", "sum", "min", "max", "value"});
    ASSERT_EQ(rows.size(), 3u);
    bool saw_counter = false;
    for (const std::vector<std::string> &row : rows) {
        if (row[0] != "dse.cache.hit")
            continue;
        saw_counter = true;
        EXPECT_EQ(row[1], "counter");
        EXPECT_EQ(io::parseInt64(row[2]), 12);
        EXPECT_DOUBLE_EQ(io::parseDouble(row[6]), 12.0);
    }
    EXPECT_TRUE(saw_counter);
}

// --------------------------------------------------------- timing/trace ----

TEST_F(TelemetryTest, ScopedTimerRecordsIntoHistogram)
{
    util::Histogram hist({1.0, 10.0});
    {
        util::ScopedTimer timer(&hist);
        EXPECT_GE(timer.elapsedSeconds(), 0.0);
    }
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_GE(hist.sum(), 0.0);

    util::ScopedTimer timer(&hist);
    const double elapsed = timer.stop();
    EXPECT_GE(elapsed, 0.0);
    EXPECT_EQ(hist.count(), 2u); // stop() records exactly once...
    {
        // ...and destruction afterwards must not double-record.
    }
}

TEST_F(TelemetryTest, NullScopedTimerIsNoOp)
{
    util::ScopedTimer timer(nullptr);
    EXPECT_DOUBLE_EQ(timer.elapsedSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(timer.stop(), 0.0);
}

TEST_F(TelemetryTest, TraceLogRecordsSortedEvents)
{
    util::TraceLog log;
    log.record("late", "test", 200, 10);
    log.record("early", "test", 100, 50);
    ASSERT_EQ(log.eventCount(), 2u);
    const std::vector<util::TraceEvent> events = log.events();
    EXPECT_EQ(events[0].name, "early");
    EXPECT_EQ(events[1].name, "late");
    EXPECT_EQ(events[0].durationUs, 50);
    log.clear();
    EXPECT_EQ(log.eventCount(), 0u);
}

TEST_F(TelemetryTest, TraceSpanRespectsEnabledFlag)
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    {
        util::TraceSpan span("disabled.span", "test");
    }
    EXPECT_EQ(telemetry.trace().eventCount(), 0u);

    telemetry.setEnabled(true);
    {
        util::TraceSpan span("enabled.span", "test");
    }
    ASSERT_EQ(telemetry.trace().eventCount(), 1u);
    EXPECT_EQ(telemetry.trace().events()[0].name, "enabled.span");
}

TEST_F(TelemetryTest, ChromeTraceJsonSchema)
{
    util::TraceLog log;
    log.record("simulate \"fast\"", "dse", 10, 5);
    log.record("phase1\nsetup", "autopilot", 0, 100);

    std::ostringstream os;
    log.writeChromeTrace(os);
    const io::JsonValue doc = io::parseJson(os.str());

    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    const io::JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.size(), 2u);
    std::set<std::string> names;
    for (const io::JsonValue &event : events.asArray()) {
        EXPECT_EQ(event.at("ph").asString(), "X");
        EXPECT_TRUE(event.at("ts").isNumber());
        EXPECT_TRUE(event.at("dur").isNumber());
        EXPECT_TRUE(event.at("pid").isNumber());
        EXPECT_TRUE(event.at("tid").isNumber());
        EXPECT_TRUE(event.at("cat").isString());
        names.insert(event.at("name").asString());
    }
    // The escaped quote and newline must survive the round-trip.
    EXPECT_TRUE(names.count("simulate \"fast\""));
    EXPECT_TRUE(names.count("phase1\nsetup"));
}

// ---------------------------------------------------------- concurrency ----

TEST_F(TelemetryTest, ConcurrentUpdatesAreLossless)
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    telemetry.setEnabled(true);
    util::Counter &counter = telemetry.metrics().counter("hammer.count");
    util::Histogram &hist = telemetry.metrics().histogram("hammer.lat");
    util::Gauge &gauge = telemetry.metrics().gauge("hammer.depth");

    constexpr std::size_t kTasks = 2000;
    {
        // Scope: the pool destructor drains queued helper tasks and
        // joins the workers, so the pool metrics below are final
        // (parallelFor itself only waits for the iterations).
        util::ThreadPool pool(4);
        pool.parallelFor(kTasks, [&](std::size_t i) {
            counter.add();
            hist.record(static_cast<double>(i % 7) * 1e-4);
            gauge.add(1);
            gauge.add(-1);
            util::TraceSpan span("hammer.task", "test");
        });
        auto submitted = pool.submit([&] { counter.add(0); });
        submitted.get();
    }

    EXPECT_EQ(counter.value(), kTasks);
    EXPECT_EQ(hist.count(), kTasks);
    EXPECT_EQ(gauge.value(), 0);
    EXPECT_GE(gauge.maxValue(), 1);
    EXPECT_EQ(telemetry.trace().eventCount(), kTasks);

    // The instrumented pool recorded its own task metrics too.
    EXPECT_GT(telemetry.metrics().find("pool.tasks").count, 0u);
    EXPECT_GT(telemetry.metrics().find("pool.task_run_s").count, 0u);
}

// ------------------------------------------------------------ pipeline ----

TEST_F(TelemetryTest, EvaluatorCountersMatchCacheStats)
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    telemetry.setEnabled(true);

    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    util::ThreadPool pool(4);
    evaluator.setThreadPool(&pool);

    const std::vector<dse::Encoding> first = distinctEncodings(24, 7);
    evaluator.evaluateBatch(first);
    // Second batch: half repeats (cache hits), half new points.
    std::vector<dse::Encoding> second(first.begin(),
                                      first.begin() + 12);
    const std::vector<dse::Encoding> extra = distinctEncodings(36, 7);
    second.insert(second.end(), extra.begin() + 24, extra.end());
    evaluator.evaluateBatch(second);

    const dse::CacheStats stats = evaluator.cacheStats();
    EXPECT_EQ(stats.requests(), 24u + 24u);
    EXPECT_EQ(telemetry.metrics().find("dse.cache.hit").count,
              stats.hits);
    EXPECT_EQ(telemetry.metrics().find("dse.cache.miss").count,
              stats.misses);
    EXPECT_EQ(telemetry.metrics().find("dse.cache.inflight_wait").count,
              stats.inflightWaits);
    // Every miss is simulated exactly once, but the analytical batch
    // path times per policy-group chunk (up to 32 points per sample)
    // rather than per point, so the histogram holds between one sample
    // per batch and one per miss.
    const std::uint64_t simulate_samples =
        telemetry.metrics().find("dse.simulate_s").count;
    EXPECT_GE(simulate_samples, 2u); // Both batches had misses.
    EXPECT_LE(simulate_samples, stats.misses);
}

TEST_F(TelemetryTest, PipelineRunEmitsPhaseAndSimulateSpans)
{
    core::TaskSpec task;
    task.density = al::ObstacleDensity::Dense;
    task.validationEpisodes = 40;
    task.dseBudget = 16;
    task.threads = 2;
    task.telemetry = true;
    core::AutoPilot pilot(task);
    EXPECT_TRUE(util::Telemetry::instance().enabled());

    const core::AutoPilotRun run =
        pilot.designFor(autopilot::uav::zhangNano());
    EXPECT_FALSE(run.candidates.empty());

    std::set<std::string> names;
    for (const util::TraceEvent &event :
         util::Telemetry::instance().trace().events())
        names.insert(event.name);
    EXPECT_TRUE(names.count("phase1"));
    EXPECT_TRUE(names.count("phase2"));
    EXPECT_TRUE(names.count("phase3"));
    EXPECT_TRUE(names.count("phase1.train_policy"));
    EXPECT_TRUE(names.count("dse.simulate"));
    EXPECT_TRUE(names.count("dse.evaluateBatch"));

    // The report gains a telemetry summary when enabled.
    std::ostringstream report;
    core::printRunReport(run, report);
    EXPECT_NE(report.str().find("Run telemetry:"), std::string::npos);
    EXPECT_NE(report.str().find("dse.cache.miss"), std::string::npos);
}
