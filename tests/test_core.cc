/**
 * @file
 * Tests for the core AutoPilot pipeline: baselines, full-system mapping,
 * strategy selection and architectural fine-tuning.
 */

#include <gtest/gtest.h>

#include "core/autopilot.h"
#include "core/baseline_eval.h"
#include "core/baselines.h"
#include "core/fine_tuning.h"
#include "nn/e2e_template.h"

namespace core = autopilot::core;
namespace dse = autopilot::dse;
namespace uav = autopilot::uav;
namespace nn = autopilot::nn;
namespace al = autopilot::airlearning;

namespace
{

core::TaskSpec
quickTask(al::ObstacleDensity density = al::ObstacleDensity::Dense)
{
    core::TaskSpec task;
    task.density = density;
    task.validationEpisodes = 40;
    task.dseBudget = 40;
    return task;
}

} // namespace

// ---------------------------------------------------------- baselines ----

TEST(Baselines, FpsInverselyProportionalToModelSize)
{
    const core::BaselinePlatform tx2 = core::jetsonTx2();
    const nn::Model small = nn::buildE2EModel({2, 32});
    const nn::Model big = nn::buildE2EModel({10, 64});
    EXPECT_GT(tx2.framesPerSecond(small), tx2.framesPerSecond(big));
    EXPECT_NEAR(tx2.framesPerSecond(small),
                tx2.effectiveGmacPerS /
                    (static_cast<double>(small.totalMacs()) * 1e-9),
                1e-9);
}

TEST(Baselines, PulpIsFixedThroughput)
{
    const core::BaselinePlatform pulp = core::pulpDronet();
    const nn::Model small = nn::buildE2EModel({2, 32});
    const nn::Model big = nn::buildE2EModel({10, 64});
    EXPECT_DOUBLE_EQ(pulp.framesPerSecond(small), 6.0);
    EXPECT_DOUBLE_EQ(pulp.framesPerSecond(big), 6.0);
    EXPECT_DOUBLE_EQ(pulp.runPowerW, 0.064);
}

TEST(Baselines, Figure5SetHasThreePlatforms)
{
    const auto platforms = core::figure5Baselines();
    ASSERT_EQ(platforms.size(), 3u);
    EXPECT_EQ(platforms[0].name, "Jetson TX2");
    EXPECT_EQ(platforms[1].name, "Xavier NX");
    EXPECT_EQ(platforms[2].name, "P-DroNet");
}

TEST(Baselines, XavierFasterThanTx2)
{
    const nn::Model model = nn::buildE2EModel({7, 48});
    EXPECT_GT(core::xavierNx().framesPerSecond(model),
              core::jetsonTx2().framesPerSecond(model));
}

TEST(BaselineEval, Tx2CrushesNanoUav)
{
    // An 85 g board on a 50 g airframe must severely hurt (or zero) the
    // mission count.
    const nn::Model model = nn::buildE2EModel({7, 48});
    const auto result = core::evaluateBaselineOnUav(
        core::jetsonTx2(), model, uav::zhangNano());
    const auto pulp = core::evaluateBaselineOnUav(
        core::pulpDronet(), model, uav::zhangNano());
    EXPECT_GT(pulp.mission.numMissions, 0.0);
    if (result.mission.feasible) {
        EXPECT_LT(result.mission.safeVelocityMps,
                  pulp.mission.kneeThroughputHz *
                      uav::zhangNano().clearancePerDecisionM);
    }
}

TEST(BaselineEval, PulpIsComputeBound)
{
    const nn::Model model = nn::buildE2EModel({7, 48});
    const auto pulp = core::evaluateBaselineOnUav(
        core::pulpDronet(), model, uav::zhangNano());
    EXPECT_EQ(pulp.mission.provisioning,
              uav::Provisioning::UnderProvisioned);
    EXPECT_DOUBLE_EQ(pulp.mission.actionThroughputHz, 6.0);
}

// --------------------------------------------------------- strategies ----

TEST(Strategy, NamesAreStable)
{
    EXPECT_EQ(core::strategyName(core::DesignStrategy::HighThroughput),
              "HT");
    EXPECT_EQ(core::strategyName(core::DesignStrategy::LowPower), "LP");
    EXPECT_EQ(core::strategyName(core::DesignStrategy::HighEfficiency),
              "HE");
    EXPECT_EQ(core::strategyName(core::DesignStrategy::AutoPilotPick),
              "AP");
}

TEST(Strategy, SelectsExtremesFromCandidates)
{
    // Build three synthetic candidates with clear extremes.
    auto make = [](double fps, double watts, double missions) {
        core::FullSystemDesign design;
        design.eval.fps = fps;
        design.eval.socPowerW = watts;
        design.mission.numMissions = missions;
        design.mission.feasible = true;
        return design;
    };
    const std::vector<core::FullSystemDesign> candidates = {
        make(200.0, 8.0, 10.0),  // HT
        make(20.0, 0.4, 20.0),   // LP
        make(100.0, 1.0, 25.0),  // HE (100 fps/W), also best missions.
    };
    EXPECT_DOUBLE_EQ(
        core::AutoPilot::selectByStrategy(
            candidates, core::DesignStrategy::HighThroughput)
            .eval.fps,
        200.0);
    EXPECT_DOUBLE_EQ(core::AutoPilot::selectByStrategy(
                         candidates, core::DesignStrategy::LowPower)
                         .eval.socPowerW,
                     0.4);
    EXPECT_DOUBLE_EQ(
        core::AutoPilot::selectByStrategy(
            candidates, core::DesignStrategy::HighEfficiency)
            .eval.fps,
        100.0);
    EXPECT_DOUBLE_EQ(core::AutoPilot::selectByStrategy(
                         candidates, core::DesignStrategy::AutoPilotPick)
                         .mission.numMissions,
                     25.0);
}

// -------------------------------------------------------- fine tuning ----

TEST(FineTuning, ReevaluateMatchesEvaluatorModels)
{
    dse::DesignPoint point;
    point.policy = {5, 32};
    const dse::Evaluation eval =
        core::ArchitecturalTuner::reevaluate(point, 0.8);
    EXPECT_DOUBLE_EQ(eval.successRate, 0.8);
    EXPECT_GT(eval.fps, 0.0);
    EXPECT_GT(eval.socPowerW, eval.npuPowerW);
    ASSERT_EQ(eval.objectives.size(), 3u);
}

TEST(FineTuning, FrequencyScalingHitsTarget)
{
    dse::DesignPoint point;
    point.policy = {5, 32};
    point.accel.peRows = 32;
    point.accel.peCols = 32;
    const dse::Evaluation base =
        core::ArchitecturalTuner::reevaluate(point, 0.8);
    const double target = base.fps * 0.5;
    const dse::Evaluation tuned =
        core::ArchitecturalTuner::scaleFrequency(base, target);
    EXPECT_NEAR(tuned.fps, target, target * 0.05);
    EXPECT_LT(tuned.point.accel.clockGhz, base.point.accel.clockGhz);
    // Lower clock -> lower dynamic power.
    EXPECT_LT(tuned.npuPowerW, base.npuPowerW);
}

TEST(FineTuning, FrequencyScalingClampsToWindow)
{
    dse::DesignPoint point;
    point.policy = {5, 32};
    const dse::Evaluation base =
        core::ArchitecturalTuner::reevaluate(point, 0.8);
    const dse::Evaluation maxed =
        core::ArchitecturalTuner::scaleFrequency(base, base.fps * 1000);
    EXPECT_DOUBLE_EQ(maxed.point.accel.clockGhz, 1.2);
}

TEST(FineTuning, TechnologyScalingImprovesPowerAndSpeed)
{
    dse::DesignPoint point;
    point.policy = {7, 48};
    point.accel.peRows = 64;
    point.accel.peCols = 64;
    const dse::Evaluation base =
        core::ArchitecturalTuner::reevaluate(point, 0.8);
    const dse::Evaluation newer =
        core::ArchitecturalTuner::scaleTechnology(base, 7);
    const dse::Evaluation older =
        core::ArchitecturalTuner::scaleTechnology(base, 40);
    EXPECT_GT(newer.fps, base.fps);
    EXPECT_LT(newer.npuPowerW, base.npuPowerW);
    EXPECT_LT(older.fps, base.fps);
    EXPECT_GT(older.npuPowerW, base.npuPowerW);
}

// ------------------------------------------------------ full pipeline ----

TEST(AutoPilotPipeline, PhasesAreCachedAndReused)
{
    core::AutoPilot pilot(quickTask());
    const auto &db_first = pilot.phase1();
    EXPECT_EQ(db_first.size(), 27u);
    const auto &dse_first = pilot.phase2();
    const std::size_t archive_size = dse_first.archive.size();
    // Second call must not re-run (same object, same size).
    EXPECT_EQ(pilot.phase2().archive.size(), archive_size);
    EXPECT_EQ(&pilot.phase1(), &db_first);
}

TEST(AutoPilotPipeline, SelectedDesignMaximizesMissions)
{
    core::AutoPilot pilot(quickTask());
    const core::AutoPilotRun run = pilot.designFor(uav::zhangNano());
    ASSERT_FALSE(run.candidates.empty());
    for (const core::FullSystemDesign &candidate : run.candidates) {
        EXPECT_LE(candidate.mission.numMissions,
                  run.selected.mission.numMissions + 1e-9);
    }
    EXPECT_TRUE(run.selected.mission.feasible);
}

TEST(AutoPilotPipeline, CandidatesMeetSuccessFilter)
{
    core::AutoPilot pilot(quickTask());
    const auto candidates = pilot.candidatesFor(uav::zhangNano());
    double best_success = 0.0;
    for (const dse::Evaluation &eval : pilot.phase2().archive)
        best_success = std::max(best_success, eval.successRate);
    for (const core::FullSystemDesign &candidate : candidates) {
        EXPECT_GE(candidate.eval.successRate + 0.02 + 1e-12,
                  best_success);
    }
}

TEST(AutoPilotPipeline, MapToFullSystemSizesHeatsinkAndSensor)
{
    dse::DesignPoint point;
    point.policy = {7, 48};
    point.accel.peRows = 128;
    point.accel.peCols = 128;
    point.accel.ifmapSramKb = 4096;
    point.accel.filterSramKb = 4096;
    point.accel.ofmapSramKb = 4096;
    const dse::Evaluation eval =
        core::ArchitecturalTuner::reevaluate(point, 0.85);
    const core::FullSystemDesign design =
        core::AutoPilot::mapToFullSystem(eval, uav::zhangNano());
    EXPECT_GT(design.payloadGrams, 40.0); // Big heatsink.
    EXPECT_EQ(design.sensorFps, 60);      // Knee above 30 Hz.
    EXPECT_DOUBLE_EQ(design.tdpW, eval.npuPowerW);
}

TEST(AutoPilotPipeline, SameDseLowersToDifferentUavs)
{
    core::AutoPilot pilot(quickTask(al::ObstacleDensity::Medium));
    const auto nano_run = pilot.designFor(uav::zhangNano());
    const auto mini_run = pilot.designFor(uav::ascTecPelican());
    // Shared Phase 2 archive, vehicle-specific Phase 3 outcomes.
    EXPECT_EQ(nano_run.dseResult.archive.size(),
              mini_run.dseResult.archive.size());
    EXPECT_GT(mini_run.selected.mission.totalMassG,
              nano_run.selected.mission.totalMassG);
}
