/**
 * @file
 * Golden regression tests: pin the calibrated headline quantities so an
 * accidental constant change (energy model, physics, template geometry)
 * is caught immediately rather than surfacing as a silently different
 * EXPERIMENTS.md. Tolerances are tight but allow harmless refactors.
 */

#include <gtest/gtest.h>

#include "core/taxonomy.h"
#include "nn/e2e_template.h"
#include "power/mass_model.h"
#include "power/npu_power.h"
#include "systolic/cycle_engine.h"
#include "uav/f1_model.h"
#include "uav/uav_spec.h"

namespace nn = autopilot::nn;
namespace sys = autopilot::systolic;
namespace pw = autopilot::power;
namespace uav = autopilot::uav;
namespace core = autopilot::core;

TEST(Golden, KneePoints)
{
    const pw::MassModel mass;
    EXPECT_NEAR(uav::F1Model(uav::zhangNano(),
                             mass.computePayloadGrams(0.7))
                    .kneeThroughputHz(),
                46.0, 1.0);
    EXPECT_NEAR(uav::F1Model(uav::djiSpark(),
                             mass.computePayloadGrams(1.5))
                    .kneeThroughputHz(),
                27.0, 1.0);
}

TEST(Golden, ComputePayloadAnchors)
{
    const pw::MassModel mass;
    EXPECT_NEAR(mass.computePayloadGrams(0.7), 23.8, 0.5);
    EXPECT_NEAR(mass.computePayloadGrams(8.24), 64.9, 1.0);
}

TEST(Golden, DensePolicyShape)
{
    const nn::Model model = nn::buildE2EModel({7, 48});
    // ~28M parameters, ~1.2 GMAC: the "109x DroNet" scale.
    EXPECT_NEAR(model.totalParams() * 1e-6, 27.8, 1.5);
    EXPECT_NEAR(model.totalMacs() * 1e-9, 1.23, 0.1);
}

TEST(Golden, CanonicalMediumDesign)
{
    // 32x32, 256 KiB scratchpads on the dense policy: the reference
    // point quoted in EXPERIMENTS.md (roughly 52 FPS at ~0.9 W).
    sys::AcceleratorConfig config;
    config.peRows = config.peCols = 32;
    config.ifmapSramKb = config.filterSramKb = config.ofmapSramKb = 256;
    const sys::CycleEngine engine(config);
    const auto run = engine.run(nn::buildE2EModel({7, 48}));
    const double fps = run.framesPerSecond(config.clockGhz);
    const double watts =
        pw::NpuPowerModel(config).averagePowerW(run);
    EXPECT_NEAR(fps, 51.7, 3.0);
    EXPECT_NEAR(watts, 0.88, 0.08);
}

TEST(Golden, VelocityCeilings)
{
    EXPECT_NEAR(uav::F1Model(uav::zhangNano(), 23.8)
                    .velocityCeilingMps(),
                13.8, 0.3);
    EXPECT_NEAR(uav::F1Model(uav::djiSpark(), 28.2)
                    .velocityCeilingMps(),
                8.1, 0.3);
}

TEST(Golden, TaxonomyThisWorkRow)
{
    EXPECT_TRUE(core::implementedHere(core::Domain::Uav,
                                      core::Paradigm::EndToEnd));
    EXPECT_FALSE(core::implementedHere(core::Domain::SelfDrivingCar,
                                       core::Paradigm::Hybrid));
    const auto front = core::componentsFor(
        core::Domain::Uav, core::Paradigm::EndToEnd,
        core::Phase::DomainSpecificFrontEnd);
    EXPECT_FALSE(front.empty());
    EXPECT_EQ(front.front(), "Air Learning");
}

TEST(Golden, TaxonomyCoversAllDomains)
{
    bool saw_uav = false, saw_car = false, saw_arm = false;
    for (const core::TaxonomyEntry &entry : core::taxonomyTable()) {
        saw_uav |= entry.domain == core::Domain::Uav;
        saw_car |= entry.domain == core::Domain::SelfDrivingCar;
        saw_arm |= entry.domain == core::Domain::ArticulatedRobot;
        EXPECT_FALSE(entry.components.empty());
    }
    EXPECT_TRUE(saw_uav);
    EXPECT_TRUE(saw_car);
    EXPECT_TRUE(saw_arm);
}
