/**
 * @file
 * Tests for the power/thermal/mass models: scaling laws, Table III
 * aggregation, technology nodes, and the paper's compute-payload anchors
 * (0.7 W -> ~24 g, 8.24 W -> ~65 g).
 */

#include <gtest/gtest.h>

#include <limits>

#include "nn/e2e_template.h"
#include "power/dram_model.h"
#include "power/mass_model.h"
#include "power/npu_power.h"
#include "power/pe_model.h"
#include "power/soc_power.h"
#include "power/sram_model.h"
#include "power/technology.h"
#include "systolic/engine.h"

namespace pw = autopilot::power;
namespace sys = autopilot::systolic;
namespace nn = autopilot::nn;

// --------------------------------------------------------------- SRAM ----

TEST(SramModel, EnergyGrowsWithCapacity)
{
    double prev = 0.0;
    for (int kb : {32, 64, 128, 256, 512, 1024, 2048, 4096}) {
        const pw::SramModel sram(kb);
        EXPECT_GT(sram.readEnergyPj(), prev);
        prev = sram.readEnergyPj();
    }
}

TEST(SramModel, SqrtScalingLaw)
{
    const pw::SramModel small(32);
    const pw::SramModel big(128);
    // 4x capacity -> 2x access energy.
    EXPECT_NEAR(big.readEnergyPj() / small.readEnergyPj(), 2.0, 1e-9);
}

TEST(SramModel, WriteCostsMoreThanRead)
{
    const pw::SramModel sram(256);
    EXPECT_GT(sram.writeEnergyPj(), sram.readEnergyPj());
}

TEST(SramModel, LeakageLinearInCapacity)
{
    const pw::SramModel small(64);
    const pw::SramModel big(256);
    EXPECT_NEAR(big.leakageMw() / small.leakageMw(), 4.0, 1e-9);
}

TEST(SramModelDeath, RejectsZeroCapacity)
{
    EXPECT_EXIT(pw::SramModel(0), ::testing::ExitedWithCode(1),
                "capacity");
}

// --------------------------------------------------------------- DRAM ----

TEST(DramModel, TransferEnergyProportionalToBytes)
{
    const pw::DramModel dram;
    EXPECT_DOUBLE_EQ(dram.transferEnergyPj(0), 0.0);
    EXPECT_DOUBLE_EQ(dram.transferEnergyPj(1000),
                     1000.0 * dram.energyPjPerByte());
}

TEST(DramModel, AveragePowerHasBackgroundFloor)
{
    const pw::DramModel dram;
    EXPECT_DOUBLE_EQ(dram.averagePowerMw(0.0), dram.backgroundMw());
    EXPECT_GT(dram.averagePowerMw(1e9), dram.backgroundMw());
}

// ----------------------------------------------------------------- PE ----

TEST(PeModel, ArrayLeakageScalesWithCount)
{
    const pw::PeModel pe;
    EXPECT_NEAR(pe.arrayLeakageMw(1024) / pe.arrayLeakageMw(256), 4.0,
                1e-9);
}

// --------------------------------------------------------- technology ----

TEST(Technology, ReferenceIs28nm)
{
    const pw::TechnologyNode node = pw::referenceNode();
    EXPECT_EQ(node.nm, 28);
    EXPECT_DOUBLE_EQ(node.dynamicScale, 1.0);
}

TEST(Technology, NewerNodesCheaperAndFaster)
{
    const pw::TechnologyNode n16 = pw::technologyNode(16);
    const pw::TechnologyNode n7 = pw::technologyNode(7);
    EXPECT_LT(n16.dynamicScale, 1.0);
    EXPECT_LT(n7.dynamicScale, n16.dynamicScale);
    EXPECT_GT(n16.frequencyScale, 1.0);
    EXPECT_GT(n7.frequencyScale, n16.frequencyScale);
}

TEST(Technology, OlderNodeMoreExpensive)
{
    const pw::TechnologyNode n40 = pw::technologyNode(40);
    EXPECT_GT(n40.dynamicScale, 1.0);
    EXPECT_LT(n40.frequencyScale, 1.0);
}

TEST(TechnologyDeath, RejectsUnsupportedNode)
{
    EXPECT_EXIT(pw::technologyNode(22), ::testing::ExitedWithCode(1),
                "unsupported");
}

TEST(Technology, ScalesSramAndPeModels)
{
    const pw::TechnologyNode n7 = pw::technologyNode(7);
    const pw::SramModel ref(256);
    const pw::SramModel scaled(256, n7);
    EXPECT_LT(scaled.readEnergyPj(), ref.readEnergyPj());
    EXPECT_LT(scaled.leakageMw(), ref.leakageMw());

    const pw::PeModel pe_ref;
    const pw::PeModel pe_scaled(n7);
    EXPECT_LT(pe_scaled.macEnergyPj(), pe_ref.macEnergyPj());
}

// ---------------------------------------------------------- NPU power ----

namespace
{

sys::AcceleratorConfig
makeConfig(int rows, int cols, int sram_kb)
{
    sys::AcceleratorConfig config;
    config.peRows = rows;
    config.peCols = cols;
    config.ifmapSramKb = sram_kb;
    config.filterSramKb = sram_kb;
    config.ofmapSramKb = sram_kb;
    return config;
}

double
npuPowerFor(const sys::AcceleratorConfig &config, const nn::Model &model)
{
    const sys::AnalyticalEngine engine(config);
    const pw::NpuPowerModel npu(config);
    return npu.averagePowerW(engine.run(model));
}

} // namespace

TEST(NpuPower, BreakdownSumsToTotal)
{
    const auto config = makeConfig(32, 32, 256);
    const sys::AnalyticalEngine engine(config);
    const pw::NpuPowerModel npu(config);
    const auto run = engine.run(nn::buildE2EModel({5, 32}));
    const pw::NpuPowerBreakdown breakdown = npu.estimate(run);
    EXPECT_NEAR(breakdown.totalW(),
                breakdown.peDynamicW + breakdown.peLeakageW +
                    breakdown.sramDynamicW + breakdown.sramLeakageW +
                    breakdown.dramW + breakdown.controllerW,
                1e-12);
    EXPECT_GT(breakdown.totalW(), 0.1);
}

TEST(NpuPower, BiggerArrayBurnsMorePower)
{
    const nn::Model model = nn::buildE2EModel({5, 32});
    const double small = npuPowerFor(makeConfig(16, 16, 128), model);
    const double big = npuPowerFor(makeConfig(128, 128, 1024), model);
    EXPECT_GT(big, small * 2.0);
}

TEST(NpuPower, WithinTableIIIBand)
{
    // Table III: the E2E NPU spans roughly 0.7 W to 8.24 W across the
    // template range; allow some slack on both ends.
    const nn::Model model = nn::buildE2EModel({7, 48});
    const double lo = npuPowerFor(makeConfig(8, 8, 32), model);
    const double hi = npuPowerFor(makeConfig(128, 128, 4096), model);
    EXPECT_GT(lo, 0.05);
    EXPECT_LT(lo, 1.0);
    EXPECT_GT(hi, 4.0);
    EXPECT_LT(hi, 12.0);
}

TEST(NpuPower, AdvancedNodeReducesPower)
{
    const auto config = makeConfig(64, 64, 512);
    const sys::AnalyticalEngine engine(config);
    const auto run = engine.run(nn::buildE2EModel({5, 48}));
    const pw::NpuPowerModel ref(config);
    const pw::NpuPowerModel scaled(config, pw::technologyNode(7));
    EXPECT_LT(scaled.averagePowerW(run), ref.averagePowerW(run));
}

// ---------------------------------------------------------- SoC power ----

TEST(SocPower, AddsTableIIIFixedComponents)
{
    const pw::SocPowerBreakdown breakdown = pw::socPower(1.0);
    EXPECT_DOUBLE_EQ(breakdown.npuW, 1.0);
    EXPECT_NEAR(breakdown.sensorW, 0.100, 1e-12);
    EXPECT_NEAR(breakdown.mipiW, 0.022, 1e-12);
    EXPECT_NEAR(breakdown.mcuW, 2 * 0.00038, 1e-12);
    EXPECT_NEAR(breakdown.totalW(), 1.0 + 0.100 + 0.022 + 0.00076,
                1e-9);
}

TEST(SocPower, FixedComponentsTotal)
{
    const pw::FixedSocComponents fixed;
    EXPECT_NEAR(fixed.totalW(), 0.12276, 1e-9);
}

// --------------------------------------------------------------- mass ----

TEST(MassModel, NoHeatsinkBelowThreshold)
{
    const pw::MassModel mass;
    EXPECT_DOUBLE_EQ(mass.heatsinkGrams(0.064), 0.0); // PULP class.
    EXPECT_DOUBLE_EQ(mass.computePayloadGrams(0.064),
                     mass.params().motherboardGrams);
}

TEST(MassModel, PaperAnchors)
{
    const pw::MassModel mass;
    // AP design: 0.7 W -> ~24 g; HT design: 8.24 W -> ~65 g (Sec. V-B2).
    EXPECT_NEAR(mass.computePayloadGrams(0.7), 24.0, 1.5);
    EXPECT_NEAR(mass.computePayloadGrams(8.24), 65.0, 3.0);
}

TEST(MassModel, HeatsinkLinearInPower)
{
    const pw::MassModel mass;
    const double at2 = mass.heatsinkGrams(2.0);
    const double at4 = mass.heatsinkGrams(4.0);
    EXPECT_NEAR(at4 / at2, 2.0, 1e-9);
}

TEST(MassModelDeath, RejectsNegativeTdp)
{
    const pw::MassModel mass;
    EXPECT_EXIT(mass.heatsinkGrams(-1.0), ::testing::ExitedWithCode(1),
                "negative");
}

TEST(NpuPowerDeath, RejectsDegenerateRunDuration)
{
    // A huge clock against a tiny cycle count drives `seconds` denormal
    // and the pJ-to-W conversion to inf; before the guard this NaN'd
    // every objective silently through the DSE.
    auto config = makeConfig(8, 8, 32);
    config.clockGhz = 1e300;
    sys::RunResult run;
    run.totalCycles = 1;
    run.totalMacs = 1;
    const pw::NpuPowerModel npu(config);
    EXPECT_EXIT(npu.estimate(run), ::testing::ExitedWithCode(1),
                "degenerate run duration");
}

TEST(NpuPowerDeath, RejectsBadBackgroundTraffic)
{
    const auto config = makeConfig(8, 8, 32);
    const sys::AnalyticalEngine engine(config);
    const auto run = engine.run(nn::buildE2EModel({5, 32}));
    const pw::NpuPowerModel npu(config);
    EXPECT_EXIT(npu.estimate(run, -1.0), ::testing::ExitedWithCode(1),
                "background DRAM traffic");
    EXPECT_EXIT(npu.estimate(run,
                             std::numeric_limits<double>::quiet_NaN()),
                ::testing::ExitedWithCode(1),
                "background DRAM traffic");
}

TEST(NpuPower, BackgroundTrafficOnlyRaisesDramPower)
{
    const auto config = makeConfig(32, 32, 256);
    const sys::AnalyticalEngine engine(config);
    const auto run = engine.run(nn::buildE2EModel({5, 32}));
    const pw::NpuPowerModel npu(config);
    const auto quiet = npu.estimate(run);
    const auto contended = npu.estimate(run, 2.0e9);
    EXPECT_GT(contended.dramW, quiet.dramW);
    EXPECT_DOUBLE_EQ(contended.peDynamicW, quiet.peDynamicW);
    EXPECT_DOUBLE_EQ(contended.sramDynamicW, quiet.sramDynamicW);
    // 2 GB/s of extra traffic at the model's pJ/byte.
    const pw::DramModel dram;
    EXPECT_NEAR(contended.dramW - quiet.dramW,
                dram.energyPjPerByte() * 2.0e9 * 1e-12, 1e-9);
}

TEST(DramModelDeath, RejectsNanParameters)
{
    EXPECT_EXIT(pw::DramModel(
                    std::numeric_limits<double>::quiet_NaN(), 40.0),
                ::testing::ExitedWithCode(1), "finite");
    EXPECT_EXIT(pw::DramModel(120.0, -1.0),
                ::testing::ExitedWithCode(1), "finite");
}
