/**
 * @file
 * Tests for the two performance engines, including the bracketing
 * property between the analytical and cycle-stepped models.
 */

#include <gtest/gtest.h>

#include <limits>

#include "nn/e2e_template.h"
#include "systolic/cycle_engine.h"
#include "systolic/engine.h"

namespace sys = autopilot::systolic;
namespace nn = autopilot::nn;

namespace
{

sys::AcceleratorConfig
makeConfig(int rows, int cols, int sram_kb,
           sys::Dataflow dataflow = sys::Dataflow::WeightStationary)
{
    sys::AcceleratorConfig config;
    config.peRows = rows;
    config.peCols = cols;
    config.ifmapSramKb = sram_kb;
    config.filterSramKb = sram_kb;
    config.ofmapSramKb = sram_kb;
    config.dataflow = dataflow;
    return config;
}

nn::Model
smallModel()
{
    nn::Model model("small");
    model.append(nn::conv2d("c0", 32, 32, 3, 3, 2, 8));
    model.append(nn::dense("fc", 15 * 15 * 8, 10));
    return model;
}

} // namespace

TEST(AnalyticalEngine, LayerResultSelfConsistent)
{
    const sys::AnalyticalEngine engine(makeConfig(16, 16, 128));
    const nn::Layer conv = nn::conv2d("c", 64, 64, 3, 5, 2, 16);
    const sys::LayerResult result = engine.runLayer(conv);
    EXPECT_EQ(result.totalCycles,
              result.computeCycles + result.stallCycles);
    EXPECT_GT(result.computeCycles, 0);
    EXPECT_GE(result.stallCycles, 0);
    EXPECT_GT(result.traffic.totalDramBytes(), 0);
}

TEST(AnalyticalEngine, RunAggregatesLayers)
{
    const sys::AnalyticalEngine engine(makeConfig(16, 16, 128));
    const nn::Model model = smallModel();
    const sys::RunResult run = engine.run(model);
    EXPECT_EQ(run.layers.size(), model.size());
    std::int64_t cycle_sum = 0;
    for (const auto &layer : run.layers)
        cycle_sum += layer.totalCycles;
    EXPECT_EQ(run.totalCycles, cycle_sum);
    EXPECT_EQ(run.totalMacs, model.totalMacs());
}

TEST(AnalyticalEngine, FpsScalesLinearlyWithClock)
{
    auto config = makeConfig(16, 16, 128);
    const sys::AnalyticalEngine engine(config);
    const sys::RunResult run = engine.run(smallModel());
    const double fps_200 = run.framesPerSecond(0.2);
    const double fps_400 = run.framesPerSecond(0.4);
    EXPECT_NEAR(fps_400 / fps_200, 2.0, 1e-9);
}

TEST(AnalyticalEngine, UtilizationBounded)
{
    const auto config = makeConfig(32, 32, 256);
    const sys::AnalyticalEngine engine(config);
    const sys::RunResult run = engine.run(nn::buildE2EModel({5, 32}));
    const double util = run.peUtilization(config.peCount());
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
}

TEST(CycleEngine, MatchesTrafficTotals)
{
    const auto config = makeConfig(16, 16, 64);
    const sys::CycleEngine cycle(config);
    const sys::AnalyticalEngine analytic(config);
    const nn::Layer conv = nn::conv2d("c", 64, 64, 8, 3, 2, 32);
    const auto cycle_result = cycle.runLayer(conv);
    const auto analytic_result = analytic.runLayer(conv);
    // Both engines report identical traffic (shared memory model).
    EXPECT_EQ(cycle_result.traffic.totalDramBytes(),
              analytic_result.traffic.totalDramBytes());
    EXPECT_EQ(cycle_result.computeCycles,
              analytic_result.computeCycles);
}

/**
 * Bracketing property: for every layer,
 *   max(compute, dram) <= cycle_total <= compute + dram + slack,
 * where slack covers the first-tile fill and last-writeback drain.
 */
class EngineBracketing
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, sys::Dataflow>>
{
};

TEST_P(EngineBracketing, CycleEngineWithinAnalyticalBounds)
{
    const auto [rows, cols, sram_kb, dataflow] = GetParam();
    const auto config = makeConfig(rows, cols, sram_kb, dataflow);
    const sys::CycleEngine cycle(config);

    const nn::Layer layers[] = {
        nn::conv2d("conv", 64, 64, 16, 3, 2, 48),
        nn::dense("fc", 4096, 512),
    };
    for (const nn::Layer &layer : layers) {
        const auto result = cycle.runLayer(layer);
        const std::int64_t dram_cycles =
            (result.traffic.totalDramBytes() + config.dramBytesPerCycle -
             1) /
            config.dramBytesPerCycle;
        const std::int64_t lower =
            std::max(result.computeCycles, dram_cycles);
        // Generous slack: fill/drain plus double-buffer serialization
        // bubbles (a few percent of the serialized time).
        const std::int64_t serialized =
            result.computeCycles + dram_cycles;
        const std::int64_t slack =
            4 * (rows + cols) + 2 * config.dramBytesPerCycle +
            serialized / 20;
        EXPECT_GE(result.totalCycles, lower) << layer.name;
        EXPECT_LE(result.totalCycles, serialized + slack) << layer.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Space, EngineBracketing,
    ::testing::Combine(
        ::testing::Values(8, 32, 128),
        ::testing::Values(8, 64),
        ::testing::Values(32, 512),
        ::testing::Values(sys::Dataflow::WeightStationary,
                          sys::Dataflow::OutputStationary,
                          sys::Dataflow::InputStationary)));

TEST(Engines, BiggerArrayNeverSlowerOnBigLayers)
{
    // For a fixed large conv layer, growing the array monotonically
    // reduces (or keeps) the cycle count.
    const nn::Layer conv = nn::conv2d("c", 128, 128, 32, 3, 1, 64);
    std::int64_t prev = -1;
    for (int size : {8, 16, 32, 64, 128}) {
        const sys::CycleEngine engine(makeConfig(size, size, 1024));
        const auto result = engine.runLayer(conv);
        if (prev >= 0) {
            EXPECT_LE(result.totalCycles, prev) << size;
        }
        prev = result.totalCycles;
    }
}

TEST(Engines, DramBoundLayerShowsStalls)
{
    // A big dense layer on a huge array with a narrow DRAM interface must
    // be dominated by stalls.
    auto config = makeConfig(256, 256, 4096);
    config.dramBytesPerCycle = 1;
    const sys::CycleEngine engine(config);
    const auto result = engine.runLayer(nn::dense("fc", 12288, 2048));
    EXPECT_GT(result.stallCycles, result.computeCycles);
}

TEST(Engines, ComputeBoundLayerHasFewStalls)
{
    // A deep conv on a tiny array with a wide interface is compute-bound.
    auto config = makeConfig(8, 8, 4096);
    config.dramBytesPerCycle = 256;
    const sys::CycleEngine engine(config);
    const auto result =
        engine.runLayer(nn::conv2d("c", 64, 64, 32, 3, 1, 64));
    EXPECT_LT(result.stallCycles, result.computeCycles / 4);
}

TEST(Engines, FullPolicyModelRunsOnAllDataflows)
{
    const nn::Model model = nn::buildE2EModel({7, 48});
    for (sys::Dataflow dataflow :
         {sys::Dataflow::WeightStationary,
          sys::Dataflow::OutputStationary,
          sys::Dataflow::InputStationary}) {
        const sys::CycleEngine engine(
            makeConfig(32, 32, 256, dataflow));
        const sys::RunResult run = engine.run(model);
        EXPECT_GT(run.framesPerSecond(0.2), 1.0)
            << sys::dataflowName(dataflow);
        EXPECT_EQ(run.totalMacs, model.totalMacs());
    }
}

TEST(EnginesDeath, EmptyModelRejected)
{
    const sys::AnalyticalEngine engine(makeConfig(8, 8, 32));
    nn::Model empty("empty");
    EXPECT_EXIT(engine.run(empty), ::testing::ExitedWithCode(1), "empty");
}

// ------------------------------------------------------- contention ----

TEST(Contention, EmptyProfileIsBitIdentical)
{
    const auto config = makeConfig(16, 16, 128);
    const sys::CycleEngine plain(config);
    const sys::CycleEngine contended(config, sys::ContentionProfile{});
    const nn::Model model = nn::buildE2EModel({5, 32});
    const sys::RunResult a = plain.run(model);
    const sys::RunResult b = contended.run(model);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    EXPECT_EQ(a.traffic.totalDramBytes(), b.traffic.totalDramBytes());
}

TEST(Contention, BackgroundTrafficMonotonicallySlows)
{
    const auto config = makeConfig(16, 16, 128);
    const nn::Model model = nn::buildE2EModel({5, 32});
    // Peak channel bandwidth: 32 B/cycle * 0.2 GHz = 6.4 GB/s.
    std::int64_t previous = 0;
    for (const double background : {0.0, 1.6e9, 3.2e9, 4.8e9}) {
        sys::ContentionProfile profile;
        profile.cameraBytesPerSec = background;
        const sys::CycleEngine engine(config, profile);
        const std::int64_t cycles = engine.run(model).totalCycles;
        EXPECT_GE(cycles, previous) << "background " << background;
        previous = cycles;
    }
    // The most contended sweep point must be strictly slower than the
    // quiet channel, and only stall cycles may grow.
    sys::ContentionProfile heavy;
    heavy.cameraBytesPerSec = 4.8e9;
    const sys::CycleEngine quiet(config);
    const sys::CycleEngine contended(config, heavy);
    const sys::RunResult q = quiet.run(model);
    const sys::RunResult c = contended.run(model);
    EXPECT_GT(c.totalCycles, q.totalCycles);
    EXPECT_EQ(c.computeCycles, q.computeCycles);
}

TEST(Contention, QosFloorBoundsTheSlowdown)
{
    const auto config = makeConfig(16, 16, 128);
    const nn::Model model = nn::buildE2EModel({5, 32});
    sys::ContentionProfile floored;
    floored.cameraBytesPerSec = 1e12; // Way past the 6.4 GB/s peak.
    floored.npuFloorFraction = 0.25;
    const sys::CycleEngine engine(config, floored);
    sys::ContentionProfile quarter;
    quarter.cameraBytesPerSec = 4.8e9; // Exactly 25% of peak left.
    const sys::CycleEngine reference(config, quarter);
    EXPECT_EQ(engine.run(model).totalCycles,
              reference.run(model).totalCycles);
}

TEST(ContentionDeath, FullyContendedChannelDiagnosed)
{
    const auto config = makeConfig(16, 16, 128);
    sys::ContentionProfile profile;
    profile.cameraBytesPerSec = 6.4e9; // == peak; zero left, no floor.
    EXPECT_EXIT(sys::CycleEngine(config, profile),
                ::testing::ExitedWithCode(1),
                "no DRAM bandwidth");
}

TEST(ContentionDeath, RejectsBadProfiles)
{
    sys::ContentionProfile negative;
    negative.hostBytesPerSec = -1.0;
    EXPECT_EXIT(negative.validate(), ::testing::ExitedWithCode(1),
                "host rate");
    sys::ContentionProfile nan;
    nan.cameraBytesPerSec = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EXIT(nan.validate(), ::testing::ExitedWithCode(1),
                "camera rate");
    sys::ContentionProfile floor;
    floor.npuFloorFraction = 1.0;
    EXPECT_EXIT(floor.validate(), ::testing::ExitedWithCode(1),
                "QoS floor");
}
