/**
 * @file
 * Tests for the Sense-Plan-Act substrate: occupancy grid, A* planner,
 * the SPA navigation pipeline and the SPA accelerator model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "airlearning/environment.h"
#include "spa/accel_model.h"
#include "spa/occupancy_grid.h"
#include "spa/pipeline.h"
#include "spa/planner.h"

namespace spa = autopilot::spa;
namespace al = autopilot::airlearning;
using autopilot::util::Rng;

// ----------------------------------------------------- occupancy grid ----

TEST(OccupancyGrid, StartsUnknown)
{
    const spa::OccupancyGrid grid(30.0, 0.5);
    EXPECT_EQ(grid.widthCells(), 60);
    EXPECT_EQ(grid.countState(spa::CellState::Unknown), 60LL * 60);
}

TEST(OccupancyGrid, WorldCellRoundTrip)
{
    const spa::OccupancyGrid grid(30.0, 0.5);
    const spa::Cell cell = grid.worldToCell(10.3, 20.7);
    double x = 0.0, y = 0.0;
    grid.cellToWorld(cell, x, y);
    EXPECT_NEAR(x, 10.3, 0.5);
    EXPECT_NEAR(y, 20.7, 0.5);
}

TEST(OccupancyGrid, WorldToCellClampsToBounds)
{
    const spa::OccupancyGrid grid(30.0, 0.5);
    EXPECT_EQ(grid.worldToCell(-5.0, 500.0), (spa::Cell{0, 59}));
}

TEST(OccupancyGrid, OccupiedDiskMarksCells)
{
    spa::OccupancyGrid grid(30.0, 0.5);
    grid.markOccupiedDisk(15.0, 15.0, 1.0);
    EXPECT_GT(grid.countState(spa::CellState::Occupied), 4);
    EXPECT_EQ(grid.at(grid.worldToCell(15.0, 15.0)),
              spa::CellState::Occupied);
    // Far cells untouched.
    EXPECT_EQ(grid.at(grid.worldToCell(5.0, 5.0)),
              spa::CellState::Unknown);
}

TEST(OccupancyGrid, FreeDiskDoesNotErodeObstacles)
{
    spa::OccupancyGrid grid(30.0, 0.5);
    grid.markOccupiedDisk(15.0, 15.0, 1.0);
    const std::int64_t occupied_before =
        grid.countState(spa::CellState::Occupied);
    grid.markFreeDisk(15.0, 15.0, 4.0);
    EXPECT_EQ(grid.countState(spa::CellState::Occupied),
              occupied_before);
    EXPECT_GT(grid.countState(spa::CellState::Free), 0);
}

TEST(OccupancyGrid, BlockedRespectsInflation)
{
    spa::OccupancyGrid grid(30.0, 0.5);
    grid.markOccupiedDisk(15.0, 15.0, 0.4);
    const spa::Cell near = grid.worldToCell(16.0, 15.0);
    EXPECT_FALSE(grid.blocked(near, 0.0));
    EXPECT_TRUE(grid.blocked(near, 1.5));
}

// ------------------------------------------------------------ planner ----

TEST(AStarPlanner, StraightLineWhenFree)
{
    spa::OccupancyGrid grid(30.0, 0.5);
    const spa::AStarPlanner planner(0.0);
    const auto plan = planner.plan(grid, {2, 2}, {20, 2});
    ASSERT_TRUE(plan.found);
    EXPECT_EQ(plan.path.front(), (spa::Cell{2, 2}));
    EXPECT_EQ(plan.path.back(), (spa::Cell{20, 2}));
    EXPECT_NEAR(plan.pathLengthCells(), 18.0, 1e-9);
}

TEST(AStarPlanner, DiagonalUsesOctileCost)
{
    spa::OccupancyGrid grid(30.0, 0.5);
    const spa::AStarPlanner planner(0.0);
    const auto plan = planner.plan(grid, {0, 0}, {10, 10});
    ASSERT_TRUE(plan.found);
    EXPECT_NEAR(plan.pathLengthCells(), 10.0 * std::sqrt(2.0), 1e-6);
}

TEST(AStarPlanner, RoutesAroundWall)
{
    spa::OccupancyGrid grid(30.0, 0.5);
    // Vertical wall with a gap at the bottom.
    for (int y = 5; y < 60; ++y)
        grid.set({30, y}, spa::CellState::Occupied);
    const spa::AStarPlanner planner(0.0);
    const auto plan = planner.plan(grid, {10, 30}, {50, 30});
    ASSERT_TRUE(plan.found);
    // Must detour: longer than the straight 40 cells.
    EXPECT_GT(plan.pathLengthCells(), 45.0);
    for (const spa::Cell &cell : plan.path)
        EXPECT_NE(grid.at(cell), spa::CellState::Occupied);
}

TEST(AStarPlanner, ReportsUnreachableGoal)
{
    spa::OccupancyGrid grid(30.0, 0.5);
    // Full wall.
    for (int y = 0; y < 60; ++y)
        grid.set({30, y}, spa::CellState::Occupied);
    const spa::AStarPlanner planner(0.0);
    const auto plan = planner.plan(grid, {10, 30}, {50, 30});
    EXPECT_FALSE(plan.found);
    EXPECT_TRUE(plan.path.empty());
}

TEST(AStarPlanner, BlockedGoalFailsFast)
{
    spa::OccupancyGrid grid(30.0, 0.5);
    grid.markOccupiedDisk(25.0, 25.0, 1.0);
    const spa::AStarPlanner planner(0.3);
    const auto plan =
        planner.plan(grid, {2, 2}, grid.worldToCell(25.0, 25.0));
    EXPECT_FALSE(plan.found);
    EXPECT_EQ(plan.expandedNodes, 0);
}

TEST(AStarPlanner, PathValidityDetectsNewObstacle)
{
    spa::OccupancyGrid grid(30.0, 0.5);
    const spa::AStarPlanner planner(0.0);
    const auto plan = planner.plan(grid, {2, 30}, {50, 30});
    ASSERT_TRUE(plan.found);
    EXPECT_TRUE(spa::pathStillValid(grid, plan.path, 0.0));
    grid.markOccupiedDisk(13.0, 15.25, 1.0); // On the path.
    EXPECT_FALSE(spa::pathStillValid(grid, plan.path, 0.0));
}

TEST(AStarPlanner, InflationWidensDetours)
{
    spa::OccupancyGrid grid(30.0, 0.5);
    grid.markOccupiedDisk(15.0, 15.0, 1.0);
    const spa::AStarPlanner tight(0.1);
    const spa::AStarPlanner wide(1.5);
    const spa::Cell start = grid.worldToCell(5.0, 15.0);
    const spa::Cell goal = grid.worldToCell(25.0, 15.0);
    const auto plan_tight = tight.plan(grid, start, goal);
    const auto plan_wide = wide.plan(grid, start, goal);
    ASSERT_TRUE(plan_tight.found);
    ASSERT_TRUE(plan_wide.found);
    EXPECT_GE(plan_wide.pathLengthCells(),
              plan_tight.pathLengthCells());
}

// ----------------------------------------------------------- pipeline ----

TEST(SpaPipeline, SucceedsInEmptyWorld)
{
    al::Environment env;
    env.arenaSize = 30.0;
    env.start = {2.0, 2.0};
    env.goal = {22.0, 20.0};
    Rng rng(1);
    const auto result =
        spa::runSpaEpisode(env, spa::SpaConfig(), rng);
    EXPECT_EQ(result.outcome, al::EpisodeOutcome::Success);
}

TEST(SpaPipeline, CollectsComputeTelemetry)
{
    const auto env_config =
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Medium);
    spa::SpaEpisodeStats stats;
    const auto result =
        spa::evaluateSpa(env_config, spa::SpaConfig(), 20, 7, &stats);
    EXPECT_EQ(result.episodes, 20);
    EXPECT_GT(stats.decisions, 0);
    EXPECT_GT(stats.replans, 0);
    EXPECT_GT(stats.expandedNodes, 0);
    EXPECT_GT(stats.mapUpdates, 0);
}

TEST(SpaPipeline, Deterministic)
{
    const auto env_config =
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Dense);
    const auto a = spa::evaluateSpa(env_config, spa::SpaConfig(), 50, 3);
    const auto b = spa::evaluateSpa(env_config, spa::SpaConfig(), 50, 3);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.collisions, b.collisions);
}

TEST(SpaPipeline, HigherDecisionRateImprovesSuccess)
{
    const auto env_config =
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Dense);
    spa::SpaConfig slow;
    slow.decisionRateHz = 1.2;
    spa::SpaConfig fast;
    fast.decisionRateHz = 10.0;
    const auto slow_result =
        spa::evaluateSpa(env_config, slow, 300, 11);
    const auto fast_result =
        spa::evaluateSpa(env_config, fast, 300, 11);
    EXPECT_GT(fast_result.successRate(),
              slow_result.successRate() + 0.05);
}

TEST(SpaPipeline, ReasonableSuccessOnAllDensities)
{
    for (al::ObstacleDensity density : al::allDensities()) {
        const auto result = spa::evaluateSpa(
            al::EnvironmentConfig::forDensity(density),
            spa::SpaConfig(), 200, 23);
        EXPECT_GT(result.successRate(), 0.4)
            << al::densityName(density);
    }
}

// -------------------------------------------------------- accel model ----

TEST(SpaAccel, MoreUnitsMeanLowerLatencyHigherPower)
{
    const spa::SpaComputeModel model;
    spa::SpaAcceleratorConfig small;
    small.vioLanes = 1;
    small.mappingBanks = 1;
    small.planningCores = 1;
    spa::SpaAcceleratorConfig big;
    big.vioLanes = 32;
    big.mappingBanks = 16;
    big.planningCores = 16;
    const auto small_est = model.estimate(small);
    const auto big_est = model.estimate(big);
    EXPECT_GT(small_est.totalLatencyMs(), big_est.totalLatencyMs());
    EXPECT_LT(small_est.powerW, big_est.powerW);
    EXPECT_GT(big_est.decisionRateHz(),
              small_est.decisionRateHz() * 8.0);
}

TEST(SpaAccel, LatencyScalesInverselyWithUnits)
{
    const spa::SpaComputeModel model;
    spa::SpaAcceleratorConfig one;
    one.vioLanes = 1;
    spa::SpaAcceleratorConfig four;
    four.vioLanes = 4;
    EXPECT_NEAR(model.estimate(one).vioLatencyMs /
                    model.estimate(four).vioLatencyMs,
                4.0, 1e-9);
}

TEST(SpaAccel, SpaceEnumerationComplete)
{
    const spa::SpaHardwareSpace space;
    EXPECT_EQ(space.enumerate().size(), 6u * 5 * 5);
}

TEST(SpaAccel, NameEncodesKnobs)
{
    spa::SpaAcceleratorConfig config;
    config.vioLanes = 8;
    config.mappingBanks = 4;
    config.planningCores = 2;
    EXPECT_EQ(config.name(), "spa_v8_m4_p2");
}

TEST(SpaAccel, DefaultConfigInUsefulBand)
{
    const spa::SpaComputeModel model;
    const auto estimate = model.estimate(spa::SpaAcceleratorConfig());
    EXPECT_GT(estimate.decisionRateHz(), 2.0);
    EXPECT_LT(estimate.decisionRateHz(), 100.0);
    EXPECT_GT(estimate.powerW, 0.05);
    EXPECT_LT(estimate.powerW, 1.0);
}
