/**
 * @file
 * Tests for the systolic fold scheduler: coverage, timing formula and
 * per-dataflow dimension assignment, including property sweeps over the
 * Table II hardware space.
 */

#include <gtest/gtest.h>

#include "nn/layer.h"
#include "systolic/config.h"
#include "systolic/tiling.h"

namespace sys = autopilot::systolic;
namespace nn = autopilot::nn;

namespace
{

sys::AcceleratorConfig
makeConfig(int rows, int cols, sys::Dataflow dataflow)
{
    sys::AcceleratorConfig config;
    config.peRows = rows;
    config.peCols = cols;
    config.dataflow = dataflow;
    return config;
}

} // namespace

TEST(FoldCycles, MatchesPipelineFormula)
{
    // 2 * rows + cols + stream - 2.
    EXPECT_EQ(sys::foldCycles(8, 8, 100), 2 * 8 + 8 + 100 - 2);
    EXPECT_EQ(sys::foldCycles(1, 1, 1), 2 + 1 + 1 - 2);
}

TEST(ScheduleGemm, ExactFitSingleFold)
{
    const nn::GemmShape gemm{32, 16, 8}; // m, n, k.
    const auto schedule = sys::scheduleGemm(
        gemm, makeConfig(8, 16, sys::Dataflow::WeightStationary));
    // WS: rows <- k (8), cols <- n (16): one fold.
    EXPECT_EQ(schedule.rowFolds, 1);
    EXPECT_EQ(schedule.colFolds, 1);
    EXPECT_EQ(schedule.folds.size(), 1u);
    EXPECT_EQ(schedule.folds[0].streamLen, 32);
}

TEST(ScheduleGemm, PartialFoldsUsePartialArray)
{
    const nn::GemmShape gemm{10, 20, 12};
    const auto schedule = sys::scheduleGemm(
        gemm, makeConfig(8, 16, sys::Dataflow::WeightStationary));
    // k = 12 over 8 rows -> folds of 8 and 4; n = 20 over 16 cols -> 16, 4.
    EXPECT_EQ(schedule.rowFolds, 2);
    EXPECT_EQ(schedule.colFolds, 2);
    EXPECT_EQ(schedule.folds[0].rowsUsed, 8);
    EXPECT_EQ(schedule.folds[0].colsUsed, 16);
    EXPECT_EQ(schedule.folds[3].rowsUsed, 4);
    EXPECT_EQ(schedule.folds[3].colsUsed, 4);
}

TEST(ScheduleGemm, DimensionAssignmentPerDataflow)
{
    const nn::GemmShape gemm{100, 20, 30};
    const auto ws = sys::scheduleGemm(
        gemm, makeConfig(8, 8, sys::Dataflow::WeightStationary));
    const auto os = sys::scheduleGemm(
        gemm, makeConfig(8, 8, sys::Dataflow::OutputStationary));
    const auto is = sys::scheduleGemm(
        gemm, makeConfig(8, 8, sys::Dataflow::InputStationary));

    // WS: rows <- k=30 (4 folds), cols <- n=20 (3), stream m=100.
    EXPECT_EQ(ws.rowFolds, 4);
    EXPECT_EQ(ws.colFolds, 3);
    EXPECT_EQ(ws.folds[0].streamLen, 100);
    // OS: rows <- m=100 (13), cols <- n=20 (3), stream k=30.
    EXPECT_EQ(os.rowFolds, 13);
    EXPECT_EQ(os.colFolds, 3);
    EXPECT_EQ(os.folds[0].streamLen, 30);
    // IS: rows <- k=30 (4), cols <- m=100 (13), stream n=20.
    EXPECT_EQ(is.rowFolds, 4);
    EXPECT_EQ(is.colFolds, 13);
    EXPECT_EQ(is.folds[0].streamLen, 20);
}

/** Property sweep: MAC coverage and fold accounting over the space. */
class TilingProperty
    : public ::testing::TestWithParam<
          std::tuple<int, int, sys::Dataflow>>
{
};

TEST_P(TilingProperty, FoldsCoverAllMacsExactly)
{
    const auto [rows, cols, dataflow] = GetParam();
    const nn::Layer conv = nn::conv2d("c", 64, 64, 16, 3, 2, 40);
    const nn::GemmShape gemm = conv.gemm();
    const auto schedule =
        sys::scheduleGemm(gemm, makeConfig(rows, cols, dataflow));
    EXPECT_EQ(schedule.totalMacs(), gemm.macs());
    EXPECT_EQ(static_cast<std::int64_t>(schedule.folds.size()),
              schedule.foldCount());
}

TEST_P(TilingProperty, FoldDimensionsWithinArray)
{
    const auto [rows, cols, dataflow] = GetParam();
    const nn::Layer fc = nn::dense("fc", 1000, 77);
    const auto schedule =
        sys::scheduleGemm(fc.gemm(), makeConfig(rows, cols, dataflow));
    for (const sys::Fold &fold : schedule.folds) {
        EXPECT_GE(fold.rowsUsed, 1);
        EXPECT_LE(fold.rowsUsed, rows);
        EXPECT_GE(fold.colsUsed, 1);
        EXPECT_LE(fold.colsUsed, cols);
        EXPECT_EQ(fold.cycles, sys::foldCycles(fold.rowsUsed,
                                               fold.colsUsed,
                                               fold.streamLen));
    }
}

TEST_P(TilingProperty, ComputeCyclesAtLeastIdealMacs)
{
    const auto [rows, cols, dataflow] = GetParam();
    const nn::Layer conv = nn::conv2d("c", 32, 32, 8, 3, 1, 24);
    const nn::GemmShape gemm = conv.gemm();
    const auto schedule =
        sys::scheduleGemm(gemm, makeConfig(rows, cols, dataflow));
    const std::int64_t ideal =
        (gemm.macs() + static_cast<std::int64_t>(rows) * cols - 1) /
        (static_cast<std::int64_t>(rows) * cols);
    EXPECT_GE(schedule.computeCycles(), ideal);
}

INSTANTIATE_TEST_SUITE_P(
    Space, TilingProperty,
    ::testing::Combine(
        ::testing::Values(8, 16, 64, 256),
        ::testing::Values(8, 32, 128),
        ::testing::Values(sys::Dataflow::WeightStationary,
                          sys::Dataflow::OutputStationary,
                          sys::Dataflow::InputStationary)));

TEST(Config, NameIsDescriptive)
{
    sys::AcceleratorConfig config;
    config.peRows = 16;
    config.peCols = 32;
    config.ifmapSramKb = 128;
    config.filterSramKb = 64;
    config.ofmapSramKb = 64;
    EXPECT_EQ(config.name(), "ws_16x32_i128_f64_o64");
}

TEST(Config, PeCountAndTotalSram)
{
    sys::AcceleratorConfig config;
    config.peRows = 64;
    config.peCols = 128;
    EXPECT_EQ(config.peCount(), 64 * 128);
    config.ifmapSramKb = 32;
    config.filterSramKb = 64;
    config.ofmapSramKb = 128;
    EXPECT_EQ(config.totalSramKb(), 224);
}

TEST(Config, HardwareSpaceCardinality)
{
    const sys::HardwareSpace space;
    // 8 rows x 8 cols x 8^3 SRAM combinations.
    EXPECT_EQ(space.cardinality(), 8LL * 8 * 8 * 8 * 8);
}

TEST(Config, HardwareSpaceContains)
{
    const sys::HardwareSpace space;
    sys::AcceleratorConfig config; // 32x32, 256KB defaults.
    EXPECT_TRUE(space.contains(config));
    config.peRows = 24;
    EXPECT_FALSE(space.contains(config));
}

TEST(ConfigDeath, ValidateRejectsBadClock)
{
    sys::AcceleratorConfig config;
    config.clockGhz = 0.0;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1), "clock");
}

TEST(Dataflow, Names)
{
    EXPECT_EQ(sys::dataflowName(sys::Dataflow::WeightStationary), "WS");
    EXPECT_EQ(sys::dataflowName(sys::Dataflow::OutputStationary), "OS");
    EXPECT_EQ(sys::dataflowName(sys::Dataflow::InputStationary), "IS");
}
