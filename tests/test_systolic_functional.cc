/**
 * @file
 * Ground-truth validation of the systolic timing model: the functional
 * register-level array must (a) compute bit-exact GEMM results through
 * the skewed weight-stationary pipeline and (b) take exactly the cycle
 * count the analytic fold formula predicts, across shapes and tilings.
 */

#include <gtest/gtest.h>

#include "nn/layer.h"
#include "systolic/functional.h"
#include "systolic/tiling.h"
#include "util/rng.h"

namespace sys = autopilot::systolic;
namespace nn = autopilot::nn;
using autopilot::util::Rng;

namespace
{

sys::IntMatrix
randomMatrix(std::int64_t rows, std::int64_t cols, Rng &rng)
{
    sys::IntMatrix m(rows, cols);
    for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t c = 0; c < cols; ++c)
            m.at(r, c) = rng.uniformInt(-128, 127); // INT8 operands.
    return m;
}

} // namespace

TEST(Functional, ReferenceGemmKnownValues)
{
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50].
    sys::IntMatrix a(2, 2), b(2, 2);
    a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
    b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
    const sys::IntMatrix c = sys::referenceGemm(a, b);
    EXPECT_EQ(c.at(0, 0), 19);
    EXPECT_EQ(c.at(0, 1), 22);
    EXPECT_EQ(c.at(1, 0), 43);
    EXPECT_EQ(c.at(1, 1), 50);
}

TEST(Functional, SingleFoldExactFit)
{
    Rng rng(1);
    const sys::IntMatrix a = randomMatrix(5, 8, rng);  // M=5, K=8.
    const sys::IntMatrix b = randomMatrix(8, 4, rng);  // K=8, N=4.
    const auto result = sys::runWeightStationaryGemm(a, b, 8, 4);
    EXPECT_EQ(result.foldCount, 1);
    const sys::IntMatrix expected = sys::referenceGemm(a, b);
    EXPECT_EQ(result.output.data, expected.data);
    // 2*K + N + M - 2 for one full fold.
    EXPECT_EQ(result.totalCycles, 2 * 8 + 4 + 5 - 2);
}

/** Shapes x array sizes property sweep. */
class FunctionalSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, int, int>>
{
};

TEST_P(FunctionalSweep, BitExactAndCycleExact)
{
    const auto [m, k, n, pe_rows, pe_cols] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m) * 1000003 + k * 1009 +
            n * 101 + pe_rows * 7 + pe_cols);
    const sys::IntMatrix a = randomMatrix(m, k, rng);
    const sys::IntMatrix b = randomMatrix(k, n, rng);

    const auto result =
        sys::runWeightStationaryGemm(a, b, pe_rows, pe_cols);
    const sys::IntMatrix expected = sys::referenceGemm(a, b);
    ASSERT_EQ(result.output.rows, expected.rows);
    ASSERT_EQ(result.output.cols, expected.cols);
    EXPECT_EQ(result.output.data, expected.data);

    // Cycle count must equal the analytic schedule exactly.
    nn::GemmShape gemm;
    gemm.m = m;
    gemm.n = n;
    gemm.k = k;
    sys::AcceleratorConfig config;
    config.peRows = pe_rows;
    config.peCols = pe_cols;
    const sys::FoldSchedule schedule = sys::scheduleGemm(gemm, config);
    EXPECT_EQ(result.foldCount, schedule.foldCount());
    EXPECT_EQ(result.totalCycles, schedule.computeCycles());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FunctionalSweep,
    ::testing::Values(
        // (M, K, N, peRows, peCols)
        std::make_tuple(1, 16, 8, 8, 8),    // Dense-layer shape.
        std::make_tuple(7, 5, 3, 8, 8),     // Smaller than the array.
        std::make_tuple(12, 20, 17, 8, 8),  // Ragged folds both ways.
        std::make_tuple(9, 8, 8, 4, 4),     // Even 2x2 fold grid.
        std::make_tuple(3, 33, 2, 16, 16),  // Deep reduction, thin out.
        std::make_tuple(25, 6, 30, 8, 16),  // Wide output.
        std::make_tuple(10, 10, 10, 2, 2),  // Tiny array, many folds.
        std::make_tuple(4, 1, 4, 8, 8),     // K = 1 edge case.
        std::make_tuple(1, 1, 1, 8, 8)));   // Scalar product.

TEST(Functional, ConvLayerLoweredGemmMatches)
{
    // Lower a small conv to its GEMM and execute it functionally: the
    // im2col'd GEMM through the array must match the reference product.
    const nn::Layer conv = nn::conv2d("c", 8, 8, 3, 3, 1, 5);
    const nn::GemmShape gemm = conv.gemm();
    Rng rng(42);
    const sys::IntMatrix a = randomMatrix(gemm.m, gemm.k, rng);
    const sys::IntMatrix b = randomMatrix(gemm.k, gemm.n, rng);
    const auto result = sys::runWeightStationaryGemm(a, b, 16, 16);
    EXPECT_EQ(result.output.data, sys::referenceGemm(a, b).data);
}

TEST(Functional, AccumulationAcrossRowFoldsIsExact)
{
    // K much larger than the array: partial sums must accumulate
    // exactly across many row folds.
    Rng rng(7);
    const sys::IntMatrix a = randomMatrix(6, 70, rng);
    const sys::IntMatrix b = randomMatrix(70, 6, rng);
    const auto result = sys::runWeightStationaryGemm(a, b, 8, 8);
    EXPECT_EQ(result.foldCount, 9); // ceil(70/8) x ceil(6/8) = 9 x 1.
    EXPECT_EQ(result.output.data, sys::referenceGemm(a, b).data);
}

/** Output-stationary execution must also be bit- and cycle-exact. */
class FunctionalOsSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, int, int>>
{
};

TEST_P(FunctionalOsSweep, BitExactAndCycleExact)
{
    const auto [m, k, n, pe_rows, pe_cols] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m) * 997 + k * 83 + n * 11 +
            pe_rows + pe_cols);
    const sys::IntMatrix a = randomMatrix(m, k, rng);
    const sys::IntMatrix b = randomMatrix(k, n, rng);

    const auto result =
        sys::runOutputStationaryGemm(a, b, pe_rows, pe_cols);
    EXPECT_EQ(result.output.data, sys::referenceGemm(a, b).data);

    nn::GemmShape gemm;
    gemm.m = m;
    gemm.n = n;
    gemm.k = k;
    sys::AcceleratorConfig config;
    config.peRows = pe_rows;
    config.peCols = pe_cols;
    config.dataflow = sys::Dataflow::OutputStationary;
    const sys::FoldSchedule schedule = sys::scheduleGemm(gemm, config);
    EXPECT_EQ(result.foldCount, schedule.foldCount());
    EXPECT_EQ(result.totalCycles, schedule.computeCycles());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FunctionalOsSweep,
    ::testing::Values(std::make_tuple(12, 20, 17, 8, 8),
                      std::make_tuple(5, 9, 3, 4, 4),
                      std::make_tuple(30, 4, 30, 8, 16),
                      std::make_tuple(1, 16, 8, 8, 8),
                      std::make_tuple(10, 10, 10, 2, 2)));

TEST(Functional, InputStationaryBitAndCycleExact)
{
    Rng rng(91);
    const sys::IntMatrix a = randomMatrix(11, 19, rng);
    const sys::IntMatrix b = randomMatrix(19, 13, rng);
    const auto result = sys::runInputStationaryGemm(a, b, 8, 8);
    EXPECT_EQ(result.output.data, sys::referenceGemm(a, b).data);

    nn::GemmShape gemm;
    gemm.m = 11;
    gemm.n = 13;
    gemm.k = 19;
    sys::AcceleratorConfig config;
    config.peRows = 8;
    config.peCols = 8;
    config.dataflow = sys::Dataflow::InputStationary;
    const sys::FoldSchedule schedule = sys::scheduleGemm(gemm, config);
    EXPECT_EQ(result.foldCount, schedule.foldCount());
    EXPECT_EQ(result.totalCycles, schedule.computeCycles());
}

TEST(Functional, TransposeRoundTrip)
{
    Rng rng(8);
    const sys::IntMatrix m = randomMatrix(5, 9, rng);
    const sys::IntMatrix round = sys::transposed(sys::transposed(m));
    EXPECT_EQ(round.data, m.data);
}

TEST(Functional, WsAndOsAgreeNumerically)
{
    Rng rng(55);
    const sys::IntMatrix a = randomMatrix(14, 22, rng);
    const sys::IntMatrix b = randomMatrix(22, 9, rng);
    const auto ws = sys::runWeightStationaryGemm(a, b, 8, 8);
    const auto os = sys::runOutputStationaryGemm(a, b, 8, 8);
    EXPECT_EQ(ws.output.data, os.output.data);
}

TEST(FunctionalDeath, ShapeMismatchRejected)
{
    sys::IntMatrix a(2, 3), b(4, 2);
    EXPECT_EXIT(sys::runWeightStationaryGemm(a, b, 8, 8),
                ::testing::ExitedWithCode(1), "shape mismatch");
}
