/**
 * @file
 * Batch-kernel equivalence suite for the raw-speed analytical core:
 *
 *  - Randomized property test: evaluatePlanBatch() aggregates are
 *    byte-identical to scalar AnalyticalEngine::run on every bundled
 *    policy model, across randomly sampled hardware-space configurations
 *    and all three dataflows (the scalar engine stays the reference
 *    implementation; the SoA kernel must never drift from it).
 *  - Arena semantics: alignment, growth without invalidation, reset()
 *    recycling (same blocks, same pointers), and the reuse property -
 *    two batches through one arena produce results identical to fresh
 *    arenas per batch.
 *  - AnalyticalBackend batch path vs. its own scalar evaluate() -
 *    field-exact Evaluations, including through a thread pool.
 *  - Degenerate-denominator guards return 0 instead of inf/NaN.
 *  - The dse.cache.key_build_s histogram records the memo-key hoist.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "airlearning/trainer.h"
#include "dse/eval_backend.h"
#include "dse/evaluator.h"
#include "nn/e2e_template.h"
#include "systolic/compiled_plan.h"
#include "systolic/engine.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace al = autopilot::airlearning;
namespace dse = autopilot::dse;
namespace nn = autopilot::nn;
namespace sys = autopilot::systolic;
namespace util = autopilot::util;

namespace
{

/** Sample @p count configurations from the Table II hardware space,
 *  cycling through all three dataflows. */
std::vector<sys::AcceleratorConfig>
sampleConfigs(std::size_t count, std::uint64_t seed)
{
    const sys::HardwareSpace space;
    util::Rng rng(seed);
    std::vector<sys::AcceleratorConfig> configs;
    configs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sys::AcceleratorConfig cfg;
        cfg.peRows = space.peRowChoices[rng.index(space.peRowChoices.size())];
        cfg.peCols = space.peColChoices[rng.index(space.peColChoices.size())];
        cfg.ifmapSramKb =
            space.sramKbChoices[rng.index(space.sramKbChoices.size())];
        cfg.filterSramKb =
            space.sramKbChoices[rng.index(space.sramKbChoices.size())];
        cfg.ofmapSramKb =
            space.sramKbChoices[rng.index(space.sramKbChoices.size())];
        switch (i % 3) {
          case 0: cfg.dataflow = sys::Dataflow::WeightStationary; break;
          case 1: cfg.dataflow = sys::Dataflow::OutputStationary; break;
          case 2: cfg.dataflow = sys::Dataflow::InputStationary; break;
        }
        configs.push_back(cfg);
    }
    // Pin the corners of the space on top of the random sample.
    sys::AcceleratorConfig smallest;
    smallest.peRows = smallest.peCols = 8;
    smallest.ifmapSramKb = smallest.filterSramKb = smallest.ofmapSramKb = 32;
    configs.push_back(smallest);
    sys::AcceleratorConfig largest;
    largest.peRows = largest.peCols = 1024;
    largest.ifmapSramKb = largest.filterSramKb = largest.ofmapSramKb = 4096;
    configs.push_back(largest);
    return configs;
}

void
expectTrafficEq(const sys::LayerTraffic &a, const sys::LayerTraffic &b)
{
    EXPECT_EQ(a.ifmapDramBytes, b.ifmapDramBytes);
    EXPECT_EQ(a.filterDramBytes, b.filterDramBytes);
    EXPECT_EQ(a.ofmapDramBytes, b.ofmapDramBytes);
    EXPECT_EQ(a.psumDramBytes, b.psumDramBytes);
    EXPECT_EQ(a.ifmapSramReads, b.ifmapSramReads);
    EXPECT_EQ(a.filterSramReads, b.filterSramReads);
    EXPECT_EQ(a.ofmapSramWrites, b.ofmapSramWrites);
    EXPECT_EQ(a.psumSramReads, b.psumSramReads);
    EXPECT_EQ(a.psumSramWrites, b.psumSramWrites);
}

const al::PolicyDatabase &
sharedDatabase()
{
    static const al::PolicyDatabase db = [] {
        al::TrainerConfig config;
        config.validationEpisodes = 20;
        const al::Trainer trainer(config);
        al::PolicyDatabase built;
        trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Dense,
                         built);
        return built;
    }();
    return db;
}

dse::BackendContext
sharedContext()
{
    return {&sharedDatabase(), al::ObstacleDensity::Dense, {}};
}

void
expectEvaluationEq(const dse::Evaluation &a, const dse::Evaluation &b)
{
    EXPECT_EQ(a.successRate, b.successRate);
    EXPECT_EQ(a.npuPowerW, b.npuPowerW);
    EXPECT_EQ(a.socPowerW, b.socPowerW);
    EXPECT_EQ(a.latencyMs, b.latencyMs);
    EXPECT_EQ(a.fps, b.fps);
    ASSERT_EQ(a.objectives.size(), b.objectives.size());
    for (std::size_t k = 0; k < a.objectives.size(); ++k)
        EXPECT_EQ(a.objectives[k], b.objectives[k]);
    EXPECT_EQ(a.fidelity, b.fidelity);
    EXPECT_EQ(a.backend, b.backend);
}

} // namespace

// ------------------------------------------------------------- kernel ----

TEST(CompiledPlan, InvariantsMatchModel)
{
    const nn::Model model = nn::buildE2EModel({4, 48});
    const sys::CompiledModelPlan plan =
        sys::CompiledModelPlan::compile(model);
    ASSERT_EQ(plan.layerCount(), model.layers().size());
    std::int64_t macs = 0;
    for (std::size_t l = 0; l < plan.layerCount(); ++l) {
        const nn::Layer &layer = model.layers()[l];
        const nn::GemmShape gemm = layer.gemm();
        EXPECT_EQ(plan.gemmM[l], gemm.m);
        EXPECT_EQ(plan.gemmN[l], gemm.n);
        EXPECT_EQ(plan.gemmK[l], gemm.k);
        EXPECT_EQ(plan.mk[l], gemm.m * gemm.k);
        EXPECT_EQ(plan.kn[l], gemm.k * gemm.n);
        EXPECT_EQ(plan.mn[l], gemm.m * gemm.n);
        EXPECT_EQ(plan.ifmapElems[l], layer.ifmapElems());
        EXPECT_EQ(plan.filterElems[l], layer.filterElems());
        EXPECT_EQ(plan.ofmapElems[l], layer.ofmapElems());
        macs += gemm.macs();
    }
    EXPECT_EQ(plan.totalMacs(), macs);
}

TEST(CompiledPlan, BatchKernelByteIdenticalToScalarEngine)
{
    // >= 200 sampled configurations (plus the space corners), every
    // bundled policy model, all three dataflows.
    const std::vector<sys::AcceleratorConfig> configs =
        sampleConfigs(200, 0xB47C11u);
    util::Arena arena;

    for (const nn::PolicyHyperParams &policy :
         nn::PolicySpace().enumerate()) {
        const nn::Model model = nn::buildE2EModel(policy);
        const sys::CompiledModelPlan plan =
            sys::CompiledModelPlan::compile(model);

        arena.reset();
        const sys::BatchRunView batch =
            sys::evaluatePlanBatch(plan, configs, arena);

        for (std::size_t c = 0; c < configs.size(); ++c) {
            SCOPED_TRACE(model.name() + " @ " + configs[c].name());
            const sys::AnalyticalEngine engine(configs[c]);
            const sys::RunResult scalar = engine.run(model);
            EXPECT_EQ(batch.totalCycles[c], scalar.totalCycles);
            EXPECT_EQ(batch.computeCycles[c], scalar.computeCycles);
            EXPECT_EQ(batch.stallCycles[c], scalar.stallCycles);
            EXPECT_EQ(batch.totalMacs[c], scalar.totalMacs);
            expectTrafficEq(batch.traffic[c], scalar.traffic);
        }
    }
}

// -------------------------------------------------------------- arena ----

TEST(Arena, AlignedAllocationAndAccounting)
{
    util::Arena arena(128);
    EXPECT_EQ(arena.blockCount(), 1u);
    EXPECT_EQ(arena.usedBytes(), 0u);

    const std::span<std::int64_t> a = arena.allocate<std::int64_t>(4);
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) %
                  alignof(std::int64_t),
              0u);
    for (const std::int64_t value : a)
        EXPECT_EQ(value, 0); // Value-initialized.
    EXPECT_EQ(arena.usedBytes(), 4 * sizeof(std::int64_t));

    // Force growth past the 128-byte first block; earlier spans stay
    // valid and the chain gains a block.
    a[0] = 42;
    const std::span<double> b = arena.allocate<double>(64);
    ASSERT_EQ(b.size(), 64u);
    EXPECT_EQ(a[0], 42);
    EXPECT_GE(arena.blockCount(), 2u);
    EXPECT_GE(arena.capacityBytes(), 128u + 64 * sizeof(double));
}

TEST(Arena, ResetRecyclesBlocksAndPointers)
{
    util::Arena arena(256);
    void *first = arena.allocateBytes(64, 8);
    arena.allocateBytes(1024, 8); // Grow.
    const std::size_t capacity = arena.capacityBytes();
    const std::size_t blocks = arena.blockCount();

    arena.reset();
    EXPECT_EQ(arena.usedBytes(), 0u);
    EXPECT_EQ(arena.capacityBytes(), capacity);
    EXPECT_EQ(arena.blockCount(), blocks);
    // Same block chain, so the first allocation lands on the same spot.
    EXPECT_EQ(arena.allocateBytes(64, 8), first);
}

TEST(Arena, ReusedArenaMatchesFreshArenas)
{
    const std::vector<sys::AcceleratorConfig> batchA =
        sampleConfigs(40, 0xAAu);
    const std::vector<sys::AcceleratorConfig> batchB =
        sampleConfigs(40, 0xBBu);
    const nn::Model model = nn::buildE2EModel({7, 64});
    const sys::CompiledModelPlan plan =
        sys::CompiledModelPlan::compile(model);

    // Reference: one fresh arena per batch.
    util::Arena freshA, freshB;
    const sys::BatchRunView refA =
        sys::evaluatePlanBatch(plan, batchA, freshA);
    const sys::BatchRunView refB =
        sys::evaluatePlanBatch(plan, batchB, freshB);

    // One arena, reset between batches (the backend's steady state).
    util::Arena reused;
    sys::BatchRunView gotA = sys::evaluatePlanBatch(plan, batchA, reused);
    for (std::size_t i = 0; i < batchA.size(); ++i) {
        EXPECT_EQ(gotA.totalCycles[i], refA.totalCycles[i]);
        EXPECT_EQ(gotA.totalMacs[i], refA.totalMacs[i]);
        expectTrafficEq(gotA.traffic[i], refA.traffic[i]);
    }
    reused.reset();
    const sys::BatchRunView gotB =
        sys::evaluatePlanBatch(plan, batchB, reused);
    const std::size_t warmCapacity = reused.capacityBytes();
    for (std::size_t i = 0; i < batchB.size(); ++i) {
        EXPECT_EQ(gotB.totalCycles[i], refB.totalCycles[i]);
        EXPECT_EQ(gotB.computeCycles[i], refB.computeCycles[i]);
        EXPECT_EQ(gotB.stallCycles[i], refB.stallCycles[i]);
        EXPECT_EQ(gotB.totalMacs[i], refB.totalMacs[i]);
        expectTrafficEq(gotB.traffic[i], refB.traffic[i]);
    }
    // A warm arena serves an identical batch without growing.
    reused.reset();
    sys::evaluatePlanBatch(plan, batchB, reused);
    EXPECT_EQ(reused.capacityBytes(), warmCapacity);
}

// ------------------------------------------------------------- guards ----

TEST(EngineGuards, DegenerateDenominatorsReturnZero)
{
#ifndef NDEBUG
    GTEST_SKIP() << "debug builds assert on degenerate denominators";
#else
    sys::LayerResult layer;
    layer.gemm = {4, 4, 4};
    layer.totalCycles = 0;
    EXPECT_EQ(layer.utilization(16), 0.0);
    layer.totalCycles = 100;
    EXPECT_EQ(layer.utilization(0), 0.0);

    sys::RunResult run;
    run.totalCycles = 0;
    EXPECT_EQ(run.runtimeSeconds(1.0), 0.0);
    run.totalCycles = 1000;
    run.totalMacs = 1000;
    EXPECT_EQ(run.runtimeSeconds(0.0), 0.0);
    EXPECT_EQ(run.runtimeSeconds(-1.0), 0.0);
    EXPECT_EQ(run.framesPerSecond(0.0), 0.0);
    EXPECT_EQ(run.peUtilization(0), 0.0);
    EXPECT_GT(run.runtimeSeconds(0.2), 0.0);
#endif
}

// ------------------------------------------------------------ backend ----

TEST(AnalyticalBatch, BatchPathMatchesScalarEvaluate)
{
    dse::AnalyticalBackend backend(sharedContext());
    dse::DesignSpace space;
    util::Rng rng(0x5EEDu);
    std::vector<dse::DesignPoint> points;
    for (int i = 0; i < 64; ++i)
        points.push_back(space.decode(space.randomEncoding(rng)));

    std::vector<dse::Evaluation> batch(points.size());
    backend.evaluateBatch(points, nullptr,
                          [&batch](std::size_t i, dse::Evaluation &&e) {
                              batch[i] = std::move(e);
                          });

    for (std::size_t i = 0; i < points.size(); ++i) {
        SCOPED_TRACE(i);
        expectEvaluationEq(batch[i], backend.evaluate(points[i]));
    }
}

TEST(AnalyticalBatch, PooledBatchMatchesSerialBatch)
{
    dse::AnalyticalBackend backend(sharedContext());
    dse::DesignSpace space;
    util::Rng rng(0xF00Du);
    std::vector<dse::DesignPoint> points;
    for (int i = 0; i < 48; ++i)
        points.push_back(space.decode(space.randomEncoding(rng)));

    std::vector<dse::Evaluation> serial(points.size());
    backend.evaluateBatch(points, nullptr,
                          [&serial](std::size_t i, dse::Evaluation &&e) {
                              serial[i] = std::move(e);
                          });

    util::ThreadPool pool(4);
    std::vector<dse::Evaluation> pooled(points.size());
    backend.evaluateBatch(points, &pool,
                          [&pooled](std::size_t i, dse::Evaluation &&e) {
                              pooled[i] = std::move(e);
                          });

    for (std::size_t i = 0; i < points.size(); ++i) {
        SCOPED_TRACE(i);
        expectEvaluationEq(pooled[i], serial[i]);
    }
}

// ---------------------------------------------------------- telemetry ----

TEST(KeyBuildTelemetry, EvaluatorRecordsKeyBuildHistogram)
{
    util::Telemetry &telemetry = util::Telemetry::instance();
    telemetry.reset();
    telemetry.setEnabled(true);

    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    dse::DesignSpace space;
    util::Rng rng(0x7E1Eu);
    std::vector<dse::Encoding> encodings;
    for (int i = 0; i < 8; ++i)
        encodings.push_back(space.randomEncoding(rng));
    evaluator.evaluateBatch(encodings);

    const util::MetricSample sample =
        telemetry.metrics().find("dse.cache.key_build_s");
    EXPECT_EQ(sample.kind, "histogram");
    EXPECT_GE(sample.count, 1u);

    telemetry.setEnabled(false);
    telemetry.reset();
}
