/**
 * @file
 * Tests for the Phase 2 evaluator and the four optimizers (BO, NSGA-II,
 * SA, random search) behind the shared Optimizer interface.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "airlearning/trainer.h"
#include "dse/annealing.h"
#include "dse/bayesopt.h"
#include "dse/evaluator.h"
#include "dse/genetic.h"
#include "dse/optimizer.h"
#include "dse/random_search.h"

namespace dse = autopilot::dse;
namespace al = autopilot::airlearning;

namespace
{

/** One shared Phase 1 database for every optimizer test (cheap config). */
const al::PolicyDatabase &
sharedDatabase()
{
    static const al::PolicyDatabase db = [] {
        al::TrainerConfig config;
        config.validationEpisodes = 40;
        const al::Trainer trainer(config);
        al::PolicyDatabase built;
        trainer.trainAll(autopilot::nn::PolicySpace(),
                         al::ObstacleDensity::Dense, built);
        return built;
    }();
    return db;
}

dse::OptimizerConfig
smallBudget(int budget, std::uint64_t seed = 42)
{
    dse::OptimizerConfig config;
    config.evaluationBudget = budget;
    config.seed = seed;
    return config;
}

} // namespace

// ---------------------------------------------------------- evaluator ----

TEST(Evaluator, ProducesConsistentObjectives)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    autopilot::util::Rng rng(1);
    const dse::Encoding encoding =
        evaluator.space().randomEncoding(rng);
    const dse::Evaluation &eval = evaluator.evaluate(encoding);
    ASSERT_EQ(eval.objectives.size(), 3u);
    EXPECT_NEAR(eval.objectives[0], 1.0 - eval.successRate, 1e-12);
    EXPECT_NEAR(eval.objectives[1], eval.socPowerW, 1e-12);
    EXPECT_NEAR(eval.objectives[2], eval.latencyMs, 1e-12);
    EXPECT_GT(eval.fps, 0.0);
    EXPECT_NEAR(eval.fps, 1000.0 / eval.latencyMs, 1e-6);
    EXPECT_GT(eval.socPowerW, eval.npuPowerW);
}

TEST(Evaluator, MemoizesRepeatEvaluations)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    autopilot::util::Rng rng(2);
    const dse::Encoding encoding =
        evaluator.space().randomEncoding(rng);
    evaluator.evaluate(encoding);
    EXPECT_EQ(evaluator.evaluationCount(), 1u);
    evaluator.evaluate(encoding);
    EXPECT_EQ(evaluator.evaluationCount(), 1u);
}

TEST(Evaluator, SuccessRateComesFromDatabase)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    const dse::Encoding encoding = {3, 1, 2, 2, 3, 3, 3}; // l5, f48.
    const dse::Evaluation &eval = evaluator.evaluate(encoding);
    const auto record =
        sharedDatabase().find({5, 48}, al::ObstacleDensity::Dense);
    ASSERT_TRUE(record.has_value());
    EXPECT_DOUBLE_EQ(eval.successRate, record->successRate);
}

// --------------------------------------------------------- optimizers ----

class OptimizerContract : public ::testing::TestWithParam<int>
{
  protected:
    std::unique_ptr<dse::Optimizer>
    makeOptimizer() const
    {
        switch (GetParam()) {
          case 0: return std::make_unique<dse::RandomSearch>();
          case 1: return std::make_unique<dse::BayesOpt>();
          case 2: return std::make_unique<dse::GeneticAlgorithm>();
          case 3: return std::make_unique<dse::SimulatedAnnealing>();
        }
        return nullptr;
    }
};

TEST_P(OptimizerContract, RespectsBudgetAndArchivesDistinctPoints)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    auto optimizer = makeOptimizer();
    const auto config = smallBudget(30);
    const dse::OptimizerResult result =
        optimizer->optimize(evaluator, config);

    EXPECT_GT(result.archive.size(), 0u);
    EXPECT_LE(result.archive.size(), 30u);
    std::set<dse::Encoding> seen;
    for (const dse::Evaluation &eval : result.archive)
        seen.insert(eval.encoding);
    EXPECT_EQ(seen.size(), result.archive.size()); // All distinct.
}

TEST_P(OptimizerContract, HypervolumeHistoryNonDecreasing)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    auto optimizer = makeOptimizer();
    const auto config = smallBudget(25, 7);
    const dse::OptimizerResult result =
        optimizer->optimize(evaluator, config);
    ASSERT_EQ(result.hypervolumeHistory.size(), result.archive.size());
    for (std::size_t i = 1; i < result.hypervolumeHistory.size(); ++i) {
        EXPECT_GE(result.hypervolumeHistory[i],
                  result.hypervolumeHistory[i - 1] - 1e-9);
    }
}

TEST_P(OptimizerContract, FrontIsNonDominatedSubset)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    auto optimizer = makeOptimizer();
    const dse::OptimizerResult result =
        optimizer->optimize(evaluator, smallBudget(25, 99));
    const auto front = result.front();
    EXPECT_GT(front.size(), 0u);
    for (const dse::Evaluation &member : front) {
        for (const dse::Evaluation &other : result.archive) {
            EXPECT_FALSE(
                dse::dominates(other.objectives, member.objectives));
        }
    }
}

TEST_P(OptimizerContract, DeterministicForSameSeed)
{
    auto optimizer_a = makeOptimizer();
    auto optimizer_b = makeOptimizer();
    dse::DseEvaluator eval_a(sharedDatabase(),
                             al::ObstacleDensity::Dense);
    dse::DseEvaluator eval_b(sharedDatabase(),
                             al::ObstacleDensity::Dense);
    const auto result_a = optimizer_a->optimize(eval_a, smallBudget(20));
    const auto result_b = optimizer_b->optimize(eval_b, smallBudget(20));
    ASSERT_EQ(result_a.archive.size(), result_b.archive.size());
    for (std::size_t i = 0; i < result_a.archive.size(); ++i)
        EXPECT_EQ(result_a.archive[i].encoding,
                  result_b.archive[i].encoding);
}

namespace
{

std::string
optimizerCaseName(const ::testing::TestParamInfo<int> &info)
{
    static const char *const names[] = {"Random", "BO", "Nsga2", "SA"};
    return names[info.param];
}

} // namespace

INSTANTIATE_TEST_SUITE_P(All, OptimizerContract,
                         ::testing::Values(0, 1, 2, 3),
                         optimizerCaseName);

TEST(BayesOpt, BeatsOrMatchesRandomOnAverage)
{
    // Model-guided search should not lose to uniform random sampling on
    // the same budget (averaged over seeds to absorb noise).
    double bo_sum = 0.0, random_sum = 0.0;
    const dse::Objectives reference = {1.0, 12.0, 120.0};
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        dse::DseEvaluator eval_bo(sharedDatabase(),
                                  al::ObstacleDensity::Dense);
        dse::DseEvaluator eval_rand(sharedDatabase(),
                                    al::ObstacleDensity::Dense);
        dse::BayesOpt bo;
        dse::RandomSearch random;
        bo_sum += bo.optimize(eval_bo, smallBudget(40, seed))
                      .finalHypervolume(reference);
        random_sum += random.optimize(eval_rand, smallBudget(40, seed))
                          .finalHypervolume(reference);
    }
    EXPECT_GE(bo_sum, random_sum * 0.97);
}

TEST(Optimizers, NamesAreStable)
{
    EXPECT_EQ(dse::BayesOpt().name(), "bo");
    EXPECT_EQ(dse::RandomSearch().name(), "random");
    EXPECT_EQ(dse::GeneticAlgorithm().name(), "nsga2");
    EXPECT_EQ(dse::SimulatedAnnealing().name(), "sa");
}
