/**
 * @file
 * Tests for the pluggable airframe + mission-mix layer: quadrotor
 * parity with the concrete F1Model/propulsion path (the refactor must
 * be byte-identical for the legacy workload), fixed-wing envelope
 * properties (stall floor, knee shift, L/D energy advantage), mission
 * profiles, infeasibility diagnoses and the weighted fleet objective.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "core/autopilot.h"
#include "core/report.h"
#include "uav/airframe.h"
#include "uav/f1_model.h"
#include "uav/fixed_wing.h"
#include "uav/mission.h"
#include "uav/mission_profile.h"
#include "uav/propulsion.h"
#include "uav/uav_spec.h"

namespace core = autopilot::core;
namespace uav = autopilot::uav;
namespace al = autopilot::airlearning;

namespace
{

core::TaskSpec
quickTask()
{
    core::TaskSpec task;
    task.validationEpisodes = 10;
    task.dseBudget = 8;
    return task;
}

uav::MissionMix
mixedFleet()
{
    uav::MissionScenario transit;
    transit.name = "transit";
    transit.weight = 2.0;

    uav::MissionScenario survey;
    survey.name = "survey";
    survey.airframe = uav::AirframeKind::FixedWing;
    survey.profile.missionClass = uav::MissionClass::SearchPattern;
    survey.profile.searchAreaM2 = 40000.0;
    survey.profile.laneSpacingM = 20.0;
    survey.weight = 1.0;

    uav::MissionMix mix;
    mix.scenarios = {transit, survey};
    return mix;
}

} // namespace

// ------------------------------------------------ names and factories ----

TEST(Airframe, KindNamesRoundTrip)
{
    EXPECT_EQ(uav::airframeKindName(uav::AirframeKind::Quadrotor),
              "quad");
    EXPECT_EQ(uav::airframeKindName(uav::AirframeKind::FixedWing),
              "fixed-wing");
    uav::AirframeKind kind = uav::AirframeKind::Quadrotor;
    EXPECT_TRUE(uav::airframeKindFromName("fixed-wing", kind));
    EXPECT_EQ(kind, uav::AirframeKind::FixedWing);
    EXPECT_TRUE(uav::airframeKindFromName("quad", kind));
    EXPECT_EQ(kind, uav::AirframeKind::Quadrotor);
    EXPECT_FALSE(uav::airframeKindFromName("ornithopter", kind));
}

TEST(Airframe, FactoryBuildsRequestedKind)
{
    const uav::UavSpec nano = uav::zhangNano();
    EXPECT_EQ(uav::makeAirframe(uav::AirframeKind::Quadrotor, nano)
                  ->kind(),
              uav::AirframeKind::Quadrotor);
    EXPECT_EQ(uav::makeAirframe(uav::AirframeKind::FixedWing, nano)
                  ->kind(),
              uav::AirframeKind::FixedWing);
}

// ----------------------------------------------------- quadrotor parity --

TEST(QuadrotorParity, MatchesF1ModelBitForBit)
{
    for (const uav::UavSpec &spec : uav::allUavs()) {
        const uav::QuadrotorAirframe quad(spec);
        for (const double payload : {0.0, 5.0, 20.0, 60.0}) {
            const uav::F1Model f1(spec, payload);
            const double mass = quad.totalMassGrams(payload);
            EXPECT_EQ(mass, f1.totalMassGrams());
            EXPECT_EQ(quad.velocityCeilingMps(mass),
                      f1.velocityCeilingMps());
            EXPECT_EQ(quad.kneeThroughputHz(mass),
                      f1.kneeThroughputHz());
            for (const double hz : {1.0, 10.0, 46.0, 200.0}) {
                EXPECT_EQ(quad.safeVelocityMps(hz, mass),
                          f1.safeVelocityMps(hz));
            }
            for (const double v : {0.0, 2.0, 8.0}) {
                EXPECT_EQ(quad.propulsionPowerW(mass, v),
                          uav::rotorPowerW(spec, mass, v));
            }
            EXPECT_EQ(quad.overheadPowerW(mass),
                      uav::rotorPowerW(spec, mass, 0.0));
            EXPECT_EQ(quad.turnRadiusM(mass, 8.0), 0.0);
        }
    }
}

TEST(QuadrotorParity, GeneralizedMissionModelIsBitIdentical)
{
    // The legacy single-argument MissionModel and the explicit
    // (quadrotor, default-profile) construction must agree on every
    // field, bit for bit: this is the refactor's core guarantee.
    for (const uav::UavSpec &spec : uav::allUavs()) {
        const uav::MissionModel legacy(spec);
        const uav::MissionModel general(
            spec, uav::AirframeKind::Quadrotor, uav::MissionProfile{});
        for (const double payload : {2.0, 10.0, 40.0}) {
            const uav::MissionResult a =
                legacy.evaluate(payload, 1.5, 50.0, 60.0);
            const uav::MissionResult b =
                general.evaluate(payload, 1.5, 50.0, 60.0);
            EXPECT_EQ(a.feasible, b.feasible);
            EXPECT_EQ(a.totalMassG, b.totalMassG);
            EXPECT_EQ(a.actionThroughputHz, b.actionThroughputHz);
            EXPECT_EQ(a.kneeThroughputHz, b.kneeThroughputHz);
            EXPECT_EQ(a.safeVelocityMps, b.safeVelocityMps);
            EXPECT_EQ(a.rotorPowerW, b.rotorPowerW);
            EXPECT_EQ(a.totalPowerW, b.totalPowerW);
            EXPECT_EQ(a.missionTimeS, b.missionTimeS);
            EXPECT_EQ(a.missionEnergyJ, b.missionEnergyJ);
            EXPECT_EQ(a.numMissions, b.numMissions);
            EXPECT_EQ(a.provisioning, b.provisioning);
        }
    }
}

TEST(QuadrotorParity, PipelineIdenticalAcrossThreadCounts)
{
    // The default-mix pipeline must select the same design with
    // bit-identical metrics at 1, 2 and 4 worker threads.
    std::vector<core::AutoPilotRun> runs;
    for (const int threads : {1, 2, 4}) {
        core::TaskSpec task = quickTask();
        task.threads = threads;
        core::AutoPilot pilot(task);
        runs.push_back(pilot.designFor(uav::zhangNano()));
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].dseResult.archive.size(),
                  runs[0].dseResult.archive.size());
        EXPECT_EQ(runs[i].selected.eval.socPowerW,
                  runs[0].selected.eval.socPowerW);
        EXPECT_EQ(runs[i].selected.eval.fps, runs[0].selected.eval.fps);
        EXPECT_EQ(runs[i].selected.mission.numMissions,
                  runs[0].selected.mission.numMissions);
        EXPECT_EQ(runs[i].selected.weightedMissions,
                  runs[0].selected.weightedMissions);
    }
    // The default mix's weighted objective IS the legacy metric.
    EXPECT_EQ(runs[0].selected.weightedMissions,
              runs[0].selected.mission.numMissions);
    EXPECT_EQ(runs[0].selected.missionScore(),
              runs[0].selected.mission.numMissions);
}

// --------------------------------------------------- fixed-wing physics --

TEST(FixedWing, StallFloorGatesLowThroughput)
{
    const uav::UavSpec nano = uav::zhangNano();
    const uav::FixedWingAirframe wing(nano);
    const uav::QuadrotorAirframe quad(nano);
    const double mass = wing.totalMassGrams(10.0);

    const double stall = wing.stallSpeedMps(mass);
    EXPECT_GT(stall, 0.0);
    EXPECT_EQ(wing.minAirspeedMps(mass), stall);

    // A throughput whose clearance-bound velocity sits below the stall
    // floor admits no safe speed for the wing, while the quadrotor just
    // flies slowly.
    const double low_hz =
        0.5 * stall / nano.clearancePerDecisionM;
    EXPECT_EQ(wing.safeVelocityMps(low_hz, mass), 0.0);
    EXPECT_GT(quad.safeVelocityMps(low_hz, mass), 0.0);
    EXPECT_NE(wing.infeasibleReason(mass, low_hz).find("stall"),
              std::string::npos)
        << wing.infeasibleReason(mass, low_hz);
}

TEST(FixedWing, StallRisesAndCeilingFallsWithMass)
{
    const uav::FixedWingAirframe wing(uav::zhangNano());
    const double light = wing.totalMassGrams(5.0);
    // Heavy enough that the sustained load factor leaves the
    // structural cap and becomes thrust-limited: that is where mass
    // starts eating the avoidance ceiling.
    const double heavy = wing.totalMassGrams(120.0);
    EXPECT_GT(wing.stallSpeedMps(heavy), wing.stallSpeedMps(light));
    EXPECT_GT(wing.sustainedLoadFactor(light),
              wing.sustainedLoadFactor(heavy));
    EXPECT_LT(wing.velocityCeilingMps(heavy),
              wing.velocityCeilingMps(light));
}

TEST(FixedWing, KneeShiftsRelativeToQuadrotor)
{
    // Different envelope physics must move the knee: the banked-turn
    // ceiling differs from the braking ceiling, so the throughput that
    // saturates the wing differs from the quadrotor's.
    const uav::UavSpec nano = uav::zhangNano();
    const uav::FixedWingAirframe wing(nano);
    const uav::QuadrotorAirframe quad(nano);
    const double mass = wing.totalMassGrams(10.0);
    EXPECT_NE(wing.kneeThroughputHz(mass), quad.kneeThroughputHz(mass));
    // Past the knee the curve is flat: more throughput buys nothing.
    EXPECT_DOUBLE_EQ(
        wing.safeVelocityMps(wing.kneeThroughputHz(mass) * 2.0, mass),
        wing.velocityCeilingMps(mass));
}

TEST(FixedWing, EnergyPerMeterBeatsQuadrotorAndIsMonotoneInLd)
{
    const uav::UavSpec nano = uav::zhangNano();
    const double payload = 10.0;
    const double v = 10.0;

    const uav::FixedWingAirframe wing(nano);
    const uav::QuadrotorAirframe quad(nano);
    const double mass = wing.totalMassGrams(payload);
    const double wing_jpm = wing.propulsionPowerW(mass, v) / v;
    const double quad_jpm = quad.propulsionPowerW(mass, v) / v;
    EXPECT_GT(quad_jpm, 3.0 * wing_jpm)
        << "fixed wing should cruise far cheaper per meter";

    // The advantage is monotone in L/D: better gliders spend less per
    // meter, at every speed.
    double previous = 0.0;
    for (const double ld : {6.0, 8.0, 10.0, 14.0}) {
        uav::FixedWingParams params = uav::defaultFixedWingParams(nano);
        params.liftToDrag = ld;
        const uav::FixedWingAirframe frame(nano, params);
        const double jpm = frame.propulsionPowerW(mass, v) / v;
        if (previous > 0.0)
            EXPECT_LT(jpm, previous) << "L/D " << ld;
        previous = jpm;
    }
}

TEST(FixedWing, TurnRadiusGrowsWithSpeedAndStretchesSearch)
{
    const uav::UavSpec nano = uav::zhangNano();
    const uav::FixedWingAirframe wing(nano);
    const double mass = wing.totalMassGrams(10.0);
    EXPECT_GT(wing.turnRadiusM(mass, 12.0),
              wing.turnRadiusM(mass, 8.0));
    EXPECT_GT(wing.turnRadiusM(mass, 8.0), 0.0);

    // Halving the lane spacing doubles the lanes (and course
    // reversals), so the same area costs more energy per sortie.
    uav::MissionProfile wide;
    wide.missionClass = uav::MissionClass::SearchPattern;
    wide.searchAreaM2 = 40000.0;
    wide.laneSpacingM = 40.0;
    uav::MissionProfile narrow = wide;
    narrow.laneSpacingM = 20.0;
    const uav::MissionModel wide_model(
        nano, uav::AirframeKind::FixedWing, wide);
    const uav::MissionModel narrow_model(
        nano, uav::AirframeKind::FixedWing, narrow);
    const uav::MissionResult few =
        wide_model.evaluate(10.0, 1.5, 60.0, 60.0);
    const uav::MissionResult many =
        narrow_model.evaluate(10.0, 1.5, 60.0, 60.0);
    ASSERT_TRUE(few.feasible);
    ASSERT_TRUE(many.feasible);
    EXPECT_GT(many.missionEnergyJ, few.missionEnergyJ);
    EXPECT_LT(many.numMissions, few.numMissions);
}

// ----------------------------------------------------- mission profiles --

TEST(MissionProfiles, SearchCostsMoreThanPointToPoint)
{
    const uav::UavSpec nano = uav::zhangNano();
    uav::MissionProfile search;
    search.missionClass = uav::MissionClass::SearchPattern;
    search.searchAreaM2 = 10000.0;
    search.laneSpacingM = 10.0;
    const uav::MissionModel p2p(nano, uav::AirframeKind::Quadrotor,
                                uav::MissionProfile{});
    const uav::MissionModel sweep(nano, uav::AirframeKind::Quadrotor,
                                  search);
    const uav::MissionResult base = p2p.evaluate(10.0, 1.5, 50.0, 60.0);
    const uav::MissionResult swept =
        sweep.evaluate(10.0, 1.5, 50.0, 60.0);
    ASSERT_TRUE(base.feasible);
    ASSERT_TRUE(swept.feasible);
    EXPECT_GT(swept.missionTimeS, base.missionTimeS);
    EXPECT_LT(swept.numMissions, base.numMissions);
}

TEST(MissionProfiles, DeliveryPaysForTheOutboundPayload)
{
    const uav::UavSpec nano = uav::zhangNano();
    uav::MissionProfile drop;
    drop.missionClass = uav::MissionClass::PayloadDelivery;
    drop.deliveryPayloadG = 30.0;
    const uav::MissionModel p2p(nano, uav::AirframeKind::Quadrotor,
                                uav::MissionProfile{});
    const uav::MissionModel delivery(nano, uav::AirframeKind::Quadrotor,
                                     drop);
    const uav::MissionResult empty =
        p2p.evaluate(10.0, 1.5, 50.0, 60.0);
    const uav::MissionResult loaded =
        delivery.evaluate(10.0, 1.5, 50.0, 60.0);
    ASSERT_TRUE(empty.feasible);
    ASSERT_TRUE(loaded.feasible);
    EXPECT_GT(loaded.missionEnergyJ, empty.missionEnergyJ);

    // A drop payload the rotors cannot lift is diagnosed, and names
    // the delivery leg rather than the cruise configuration.
    uav::MissionProfile heavy = drop;
    heavy.deliveryPayloadG = 200.0;
    const uav::MissionModel impossible(
        nano, uav::AirframeKind::Quadrotor, heavy);
    const uav::MissionResult result =
        impossible.evaluate(10.0, 1.5, 50.0, 60.0);
    EXPECT_FALSE(result.feasible);
    EXPECT_NE(result.infeasibleReason.find("delivery payload"),
              std::string::npos)
        << result.infeasibleReason;
}

// ------------------------------------------- infeasibility diagnostics --

TEST(Diagnostics, NearZeroSafeVelocityIsDiagnosedNotNonFinite)
{
    const uav::UavSpec nano = uav::zhangNano();
    const uav::MissionModel model(nano);
    // Zero compute throughput pins the pipeline (and v_safe) at zero;
    // the legacy model divided by it.
    const uav::MissionResult result =
        model.evaluate(10.0, 1.5, 0.0, 60.0);
    EXPECT_FALSE(result.feasible);
    EXPECT_FALSE(result.infeasibleReason.empty());
    EXPECT_TRUE(std::isfinite(result.missionTimeS));
    EXPECT_TRUE(std::isfinite(result.missionEnergyJ));
    EXPECT_TRUE(std::isfinite(result.numMissions));
    EXPECT_EQ(result.numMissions, 0.0);
}

TEST(Diagnostics, OverweightDesignCarriesReadableReason)
{
    const uav::UavSpec nano = uav::zhangNano();
    const uav::MissionModel model(nano);
    // 500 g of compute on a nano frame with ~1.58 N of thrust.
    const uav::MissionResult result =
        model.evaluate(500.0, 1.5, 50.0, 60.0);
    EXPECT_FALSE(result.feasible);
    EXPECT_NE(result.infeasibleReason.find("thrust"), std::string::npos)
        << result.infeasibleReason;

    // The reason surfaces in the design report table.
    core::FullSystemDesign design;
    design.mission = result;
    std::ostringstream os;
    core::printDesignReport(design, os);
    EXPECT_NE(os.str().find("infeasible"), std::string::npos);
    EXPECT_NE(os.str().find("thrust"), std::string::npos);
}

// --------------------------------------------------------- mission mix --

TEST(MissionMix, TagAndDefaultSemantics)
{
    uav::MissionMix mix;
    EXPECT_TRUE(mix.isDefault());
    EXPECT_EQ(mix.tag(), "-");
    mix = mixedFleet();
    EXPECT_FALSE(mix.isDefault());
    EXPECT_EQ(mix.tag(), "transit+survey");
    EXPECT_DOUBLE_EQ(mix.totalWeight(), 3.0);
    ASSERT_EQ(uav::effectiveScenarios(uav::MissionMix{}).size(), 1u);
    EXPECT_EQ(uav::effectiveScenarios(uav::MissionMix{})[0].airframe,
              uav::AirframeKind::Quadrotor);
}

TEST(MissionMix, WeightedObjectiveAveragesScenarios)
{
    const core::TaskSpec task = quickTask();
    core::AutoPilot pilot(task);
    const std::vector<core::FullSystemDesign> candidates =
        pilot.candidatesFor(uav::zhangNano());
    ASSERT_FALSE(candidates.empty());

    const uav::MissionMix mix = mixedFleet();
    const core::FullSystemDesign design = core::AutoPilot::
        mapToFullSystem(candidates.front().eval, uav::zhangNano(), mix);
    ASSERT_EQ(design.scenarios.size(), 2u);
    const double expected = (2.0 * design.scenarios[0].mission.numMissions +
                             1.0 * design.scenarios[1].mission.numMissions) /
                            3.0;
    EXPECT_DOUBLE_EQ(design.weightedMissions, expected);
    EXPECT_EQ(design.missionScore(), design.weightedMissions);
    // The primary mission fields mirror the first scenario.
    EXPECT_EQ(design.mission.numMissions,
              design.scenarios[0].mission.numMissions);
    EXPECT_EQ(design.scenarios[1].airframe,
              uav::AirframeKind::FixedWing);
}

TEST(MissionMix, FingerprintPreservedForDefaultAndFoldedForMix)
{
    const core::TaskSpec legacy = quickTask();
    core::TaskSpec with_default_mix = quickTask();
    with_default_mix.missionMix = uav::MissionMix{};
    // The default mix must not perturb the fingerprint: pre-airframe
    // journals and checkpoints resume under the new code.
    EXPECT_EQ(core::taskFingerprint(legacy),
              core::taskFingerprint(with_default_mix));

    core::TaskSpec mixed = quickTask();
    mixed.missionMix = mixedFleet();
    EXPECT_NE(core::taskFingerprint(legacy),
              core::taskFingerprint(mixed));

    // Any scenario parameter change re-fingerprints the task.
    core::TaskSpec reweighted = mixed;
    reweighted.missionMix.scenarios[1].weight = 4.0;
    EXPECT_NE(core::taskFingerprint(mixed),
              core::taskFingerprint(reweighted));
}

TEST(MissionMix, FleetObjectiveReordersCandidates)
{
    const core::TaskSpec task = quickTask();
    core::AutoPilot pilot(task);
    const std::vector<core::FullSystemDesign> defaults =
        pilot.candidatesFor(uav::zhangNano());
    ASSERT_GE(defaults.size(), 2u);

    const uav::MissionMix mix = mixedFleet();
    std::vector<core::FullSystemDesign> mixed;
    for (const core::FullSystemDesign &design : defaults)
        mixed.push_back(core::AutoPilot::mapToFullSystem(
            design.eval, uav::zhangNano(), mix));

    // The weighted objective must actually differ from the legacy
    // single-scenario metric for at least one candidate; otherwise the
    // fleet layer changed nothing.
    bool differs = false;
    for (std::size_t i = 0; i < defaults.size(); ++i)
        differs |= mixed[i].missionScore() !=
                   defaults[i].mission.numMissions;
    EXPECT_TRUE(differs);
}

TEST(MissionMix, ParetoFrontMaximizesMissionsMinimizesPower)
{
    auto design = [](double missions, double watts) {
        core::FullSystemDesign d;
        d.mission.numMissions = missions;
        d.eval.socPowerW = watts;
        return d;
    };
    // (10, 1 W) and (20, 2 W) trade off; (5, 3 W) is dominated; the
    // duplicate of the first keeps only its first occurrence.
    const std::vector<core::FullSystemDesign> candidates = {
        design(10.0, 1.0), design(20.0, 2.0), design(5.0, 3.0),
        design(10.0, 1.0)};
    const std::vector<std::size_t> front =
        core::missionParetoFront(candidates);
    EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

TEST(MissionMix, RunReportGainsScenarioTableOnlyForNonDefaultMix)
{
    core::TaskSpec task = quickTask();
    core::AutoPilot pilot(task);
    core::AutoPilotRun run = pilot.designFor(uav::zhangNano());
    std::ostringstream plain;
    core::printRunReport(run, plain);
    EXPECT_EQ(plain.str().find("Mission mix"), std::string::npos);

    core::TaskSpec mixed_task = quickTask();
    mixed_task.missionMix = mixedFleet();
    core::AutoPilot fleet_pilot(mixed_task);
    core::AutoPilotRun fleet_run =
        fleet_pilot.designFor(uav::zhangNano());
    std::ostringstream fleet;
    core::printRunReport(fleet_run, fleet);
    EXPECT_NE(fleet.str().find("Mission mix 'transit+survey'"),
              std::string::npos);
    EXPECT_NE(fleet.str().find("Fleet Pareto front"),
              std::string::npos);
    EXPECT_NE(fleet.str().find("fixed-wing"), std::string::npos);
}
