/**
 * @file
 * Tests for the campaign-runner subsystem: retry/deadline primitives,
 * the evaluation journal and policy checkpoint, warm-start resume
 * equivalence (kill after any batch == uninterrupted, per optimizer and
 * thread count), and fault-tolerant multi-task orchestration.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <span>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "airlearning/trainer.h"
#include "core/autopilot.h"
#include "dram/config.h"
#include "dse/eval_backend.h"
#include "dse/evaluator.h"
#include "io/journal.h"
#include "io/persistence.h"
#include "runner/campaign.h"
#include "uav/uav_spec.h"
#include "util/retry.h"

namespace fs = std::filesystem;
namespace al = autopilot::airlearning;
namespace core = autopilot::core;
namespace dram = autopilot::dram;
namespace dse = autopilot::dse;
namespace io = autopilot::io;
namespace nn = autopilot::nn;
namespace runner = autopilot::runner;
namespace util = autopilot::util;

namespace
{

/** Fresh per-test scratch directory under the system temp dir. */
fs::path
testDir(const std::string &name)
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("autopilot_runner_" + std::to_string(::getpid()) + "_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** One shared Phase 1 database for the evaluator-level tests. */
const al::PolicyDatabase &
sharedDatabase()
{
    static const al::PolicyDatabase db = [] {
        al::TrainerConfig config;
        config.validationEpisodes = 40;
        const al::Trainer trainer(config);
        al::PolicyDatabase built;
        trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Dense,
                         built);
        return built;
    }();
    return db;
}

/** Small, fast task spec shared by the pipeline-level tests. */
core::TaskSpec
smallSpec(const std::string &optimizer = "bo",
          const std::string &backend = "analytical")
{
    core::TaskSpec spec;
    spec.density = al::ObstacleDensity::Dense;
    spec.validationEpisodes = 40;
    spec.dseBudget = 24;
    spec.optimizer = optimizer;
    spec.backend = backend;
    return spec;
}

/** Render an archive as its canonical CSV (byte-comparison helper). */
std::string
archiveCsv(const std::vector<dse::Evaluation> &archive)
{
    std::stringstream buffer;
    io::writeDseArchive(archive, buffer);
    return buffer.str();
}

std::string
fileBytes(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * Keep only the first @p keepRows data rows of a journal - the on-disk
 * state after a kill that landed right after batch boundary keepRows.
 */
void
truncateJournal(const fs::path &path, std::size_t keepRows)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    in.close();
    ASSERT_GE(lines.size(), 2u) << path;
    std::ofstream out(path, std::ios::trunc);
    // Fingerprint + header, then the kept prefix.
    for (std::size_t i = 0; i < lines.size() && i < 2 + keepRows; ++i)
        out << lines[i] << '\n';
}

std::size_t
journalRows(const fs::path &path)
{
    std::ifstream in(path);
    std::size_t count = 0;
    std::string line;
    while (std::getline(in, line))
        ++count;
    return count >= 2 ? count - 2 : 0;
}

/** Two hand-made evaluations for journal round-trip tests. */
std::vector<dse::Evaluation>
madeBatch(int offset)
{
    const dse::DesignSpace space;
    std::vector<dse::Evaluation> batch;
    for (int k = 0; k < 2; ++k) {
        dse::Evaluation eval;
        // The default space pins the precision dim to one choice, so
        // only the seven classic dimensions can take index 1.
        for (std::size_t d = 0; d < dse::precisionDim; ++d)
            eval.encoding[d] = (offset + k) % 2;
        eval.point = space.decode(eval.encoding);
        eval.successRate = 0.25 * (k + 1);
        eval.npuPowerW = 1.5 + offset;
        eval.socPowerW = 3.0 + offset;
        eval.latencyMs = 7.0 + k;
        eval.fps = 30.0 + offset;
        eval.objectives = {1.0 - eval.successRate, eval.socPowerW,
                           eval.latencyMs};
        batch.push_back(eval);
    }
    return batch;
}

// ------------------------------------------------ injected backends ----

/// One-shot failure countdown: evaluate() throws exactly when this
/// counter steps from 1 to 0. Set very negative for "never".
std::atomic<int> flakyCountdown{std::numeric_limits<int>::min() / 2};

/** Analytical delegate that throws once when the countdown fires. */
class FlakyBackend : public dse::EvalBackend
{
  public:
    explicit FlakyBackend(const dse::BackendContext &context)
        : inner(context)
    {
    }

    std::string name() const override { return "flaky"; }
    dse::Fidelity fidelity() const override
    {
        return dse::Fidelity::Analytical;
    }

    dse::Evaluation
    evaluate(const dse::DesignPoint &point) override
    {
        if (flakyCountdown.fetch_sub(1) == 1)
            throw std::runtime_error("injected transient fault");
        dse::Evaluation eval = inner.evaluate(point);
        eval.backend = "flaky";
        return eval;
    }

  private:
    dse::AnalyticalBackend inner;
};

/** Backend whose every evaluation fails (permanent fault). */
class AlwaysFailBackend : public dse::EvalBackend
{
  public:
    explicit AlwaysFailBackend(const dse::BackendContext &) {}

    std::string name() const override { return "alwaysfail"; }
    dse::Fidelity fidelity() const override
    {
        return dse::Fidelity::Analytical;
    }

    dse::Evaluation
    evaluate(const dse::DesignPoint &) override
    {
        throw std::runtime_error("permanent injected fault");
    }
};

/** Each ctest invocation is a fresh process; register lazily. */
void
ensureTestBackends()
{
    static const bool registered = [] {
        dse::BackendRegistry::instance().registerFactory(
            "flaky", [](const dse::BackendContext &context) {
                return std::make_unique<FlakyBackend>(context);
            });
        dse::BackendRegistry::instance().registerFactory(
            "alwaysfail", [](const dse::BackendContext &context) {
                return std::make_unique<AlwaysFailBackend>(context);
            });
        return true;
    }();
    (void)registered;
}

/** Fast retry schedule so failure tests do not sleep for real. */
util::RetryPolicy
fastRetry(int maxAttempts = 3)
{
    util::RetryPolicy policy;
    policy.maxAttempts = maxAttempts;
    policy.initialBackoffSeconds = 1e-4;
    policy.maxBackoffSeconds = 1e-3;
    return policy;
}

std::string
reportString(const runner::CampaignReport &report)
{
    std::ostringstream os;
    runner::printCampaignReport(report, os);
    return os.str();
}

} // namespace

// ------------------------------------------------------ retry/deadline ----

TEST(Retry, BackoffScheduleIsExponentialAndClamped)
{
    util::RetryPolicy policy;
    policy.initialBackoffSeconds = 0.02;
    policy.backoffMultiplier = 2.0;
    policy.maxBackoffSeconds = 0.05;
    EXPECT_DOUBLE_EQ(util::retryBackoffSeconds(policy, 2), 0.02);
    EXPECT_DOUBLE_EQ(util::retryBackoffSeconds(policy, 3), 0.04);
    EXPECT_DOUBLE_EQ(util::retryBackoffSeconds(policy, 4), 0.05);
    EXPECT_DOUBLE_EQ(util::retryBackoffSeconds(policy, 9), 0.05);
}

TEST(Retry, SucceedsAfterTransientFailures)
{
    int calls = 0;
    int retries = 0;
    const int result = util::retryWithBackoff(
        fastRetry(5),
        [&](int attempt) {
            ++calls;
            EXPECT_EQ(attempt, calls);
            if (attempt < 3)
                throw std::runtime_error("transient");
            return 42;
        },
        [&](int, const std::exception &) { ++retries; });
    EXPECT_EQ(result, 42);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(retries, 2);
}

TEST(Retry, ExhaustsBudgetAndRethrowsLastError)
{
    int calls = 0;
    EXPECT_THROW(util::retryWithBackoff(fastRetry(3),
                                        [&](int) -> int {
                                            ++calls;
                                            throw std::runtime_error(
                                                "still broken");
                                        }),
                 std::runtime_error);
    EXPECT_EQ(calls, 3);
}

TEST(Retry, DeadlineExceededIsNeverRetried)
{
    int calls = 0;
    EXPECT_THROW(util::retryWithBackoff(fastRetry(5),
                                        [&](int) -> int {
                                            ++calls;
                                            throw util::DeadlineExceeded(
                                                "too slow");
                                        }),
                 util::DeadlineExceeded);
    EXPECT_EQ(calls, 1);
}

TEST(Retry, CustomPredicateStopsRetries)
{
    util::RetryPolicy policy = fastRetry(5);
    policy.retryable = [](const std::exception &error) {
        return std::string(error.what()) != "fatal-ish";
    };
    int calls = 0;
    EXPECT_THROW(util::retryWithBackoff(policy,
                                        [&](int) -> int {
                                            ++calls;
                                            throw std::runtime_error(
                                                "fatal-ish");
                                        }),
                 std::runtime_error);
    EXPECT_EQ(calls, 1);
}

TEST(Deadline, UnlimitedNeverExpires)
{
    const util::Deadline unlimited;
    EXPECT_TRUE(unlimited.unlimited());
    EXPECT_FALSE(unlimited.expired());
    EXPECT_NO_THROW(unlimited.check("anything"));
    EXPECT_TRUE(util::Deadline::after(0.0).unlimited());
    EXPECT_TRUE(util::Deadline::after(-1.0).unlimited());
}

TEST(Deadline, ExpiresAndThrowsWithContext)
{
    const util::Deadline deadline = util::Deadline::after(1e-9);
    EXPECT_FALSE(deadline.unlimited());
    // 1 ns is in the past by the time we get here.
    EXPECT_TRUE(deadline.expired());
    EXPECT_DOUBLE_EQ(deadline.remainingSeconds(), 0.0);
    try {
        deadline.check("phase2");
        FAIL() << "check() must throw on an expired deadline";
    } catch (const util::DeadlineExceeded &error) {
        EXPECT_NE(std::string(error.what()).find("phase2"),
                  std::string::npos);
    }
}

// ------------------------------------------------------------- journal ----

TEST(Journal, RoundTripsBatchesWithFingerprint)
{
    const fs::path dir = testDir("journal_roundtrip");
    const fs::path path = dir / "journal.csv";
    const auto batchA = madeBatch(0);
    const auto batchB = madeBatch(1);
    {
        io::EvalJournalWriter writer(path.string(), 0xFEEDFACEu);
        writer.append(batchA);
        writer.append(batchB);
    }
    const io::JournalReplay replay = io::readEvalJournal(path.string());
    EXPECT_TRUE(replay.found);
    EXPECT_FALSE(replay.truncated);
    EXPECT_EQ(replay.fingerprint, 0xFEEDFACEu);
    ASSERT_EQ(replay.entries.size(), 4u);
    EXPECT_EQ(archiveCsv(replay.entries),
              archiveCsv({batchA[0], batchA[1], batchB[0], batchB[1]}));
    fs::remove_all(dir);
}

TEST(Journal, ReplayedRowsCarryOverOnRewrite)
{
    const fs::path dir = testDir("journal_carryover");
    const fs::path path = dir / "journal.csv";
    const auto replayed = madeBatch(0);
    {
        io::EvalJournalWriter writer(path.string(), 7u, replayed);
        writer.append(madeBatch(1));
    }
    const io::JournalReplay replay = io::readEvalJournal(path.string());
    ASSERT_EQ(replay.entries.size(), 4u);
    EXPECT_EQ(replay.entries[0].encoding, replayed[0].encoding);
    fs::remove_all(dir);
}

TEST(Journal, TornTailIsTruncatedOnReplay)
{
    const fs::path dir = testDir("journal_torn");
    const fs::path path = dir / "journal.csv";
    {
        io::EvalJournalWriter writer(path.string(), 3u);
        writer.append(madeBatch(0));
    }
    {
        // A kill mid-append leaves a partial final record.
        std::ofstream out(path, std::ios::app);
        out << "1,0,1,0,1,0,1,0.33,2."; // torn: no newline, too short
    }
    const io::JournalReplay replay = io::readEvalJournal(path.string());
    EXPECT_TRUE(replay.found);
    EXPECT_TRUE(replay.truncated);
    EXPECT_EQ(replay.entries.size(), 2u);
    EXPECT_EQ(replay.badLine, 5u); // fingerprint + header + 2 rows + torn.
    EXPECT_FALSE(replay.reason.empty());
    fs::remove_all(dir);
}

TEST(Journal, FingerprintOnlyFileIsCleanFreshStart)
{
    // A kill between the fingerprint flush and the header flush leaves
    // a fingerprint-only journal: zero batches committed, so replay
    // must report a clean (non-truncated) empty run, not a torn tail.
    const fs::path dir = testDir("journal_fingerprint_only");
    const fs::path path = dir / "journal.csv";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "fingerprint," << io::formatFingerprint(0xC0FFEEu)
            << '\n';
    }
    const io::JournalReplay replay = io::readEvalJournal(path.string());
    EXPECT_TRUE(replay.found);
    EXPECT_FALSE(replay.truncated);
    EXPECT_EQ(replay.fingerprint, 0xC0FFEEu);
    EXPECT_TRUE(replay.entries.empty());
    EXPECT_TRUE(replay.reason.empty());
    fs::remove_all(dir);
}

TEST(Journal, TornHeaderIsCleanFreshStart)
{
    // Killed mid-header-write: the archive header itself is the torn
    // line. No row was committed, so this is equivalent to a fresh run.
    const fs::path dir = testDir("journal_torn_header");
    const fs::path path = dir / "journal.csv";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "fingerprint," << io::formatFingerprint(0xC0FFEEu)
            << '\n';
        out << "layers_idx,filters_idx,pe_r"; // torn: no newline
    }
    const io::JournalReplay replay = io::readEvalJournal(path.string());
    EXPECT_TRUE(replay.found);
    EXPECT_FALSE(replay.truncated);
    EXPECT_TRUE(replay.entries.empty());
    fs::remove_all(dir);
}

TEST(Journal, MissingOrHeaderlessFileIsNotFound)
{
    EXPECT_FALSE(
        io::readEvalJournal("/nonexistent/journal.csv").found);
    std::istringstream noFingerprint("layers_idx,filters_idx\n");
    EXPECT_FALSE(io::readEvalJournal(noFingerprint).found);
    // Killed mid-fingerprint-write: the key itself is torn, so the
    // file reads as not-found and resume falls back to a fresh run.
    std::istringstream tornFingerprint("fingerpr");
    EXPECT_FALSE(io::readEvalJournal(tornFingerprint).found);
}

TEST(Journal, PolicyCheckpointRoundTrips)
{
    const fs::path dir = testDir("policy_checkpoint");
    const fs::path path = dir / "policies.chk";
    const al::PolicyDatabase &db = sharedDatabase();
    io::writePolicyCheckpoint(path.string(), 0xA11CEu, db);
    const io::PolicyCheckpoint checkpoint =
        io::readPolicyCheckpoint(path.string());
    EXPECT_TRUE(checkpoint.found);
    EXPECT_TRUE(checkpoint.ok);
    EXPECT_EQ(checkpoint.fingerprint, 0xA11CEu);
    ASSERT_EQ(checkpoint.db.size(), db.size());
    for (const al::PolicyRecord &record : db.all()) {
        const auto loaded =
            checkpoint.db.find(record.params, record.density);
        ASSERT_TRUE(loaded.has_value());
        EXPECT_DOUBLE_EQ(loaded->successRate, record.successRate);
    }
    EXPECT_FALSE(
        io::readPolicyCheckpoint((dir / "absent.chk").string()).found);
    fs::remove_all(dir);
}

// --------------------------------------------------------- fingerprint ----

TEST(Fingerprint, CoversResultFieldsAndIgnoresThreads)
{
    const core::TaskSpec base = smallSpec();
    core::TaskSpec changed = base;
    changed.seed ^= 1;
    EXPECT_NE(core::taskFingerprint(base),
              core::taskFingerprint(changed));
    changed = base;
    changed.optimizer = "sa";
    EXPECT_NE(core::taskFingerprint(base),
              core::taskFingerprint(changed));
    changed = base;
    changed.backend = "tiered";
    EXPECT_NE(core::taskFingerprint(base),
              core::taskFingerprint(changed));
    changed = base;
    changed.dseBudget += 1;
    EXPECT_NE(core::taskFingerprint(base),
              core::taskFingerprint(changed));
    // Threads/telemetry/checkpointing do not change results, so a
    // journal must resume across them.
    changed = base;
    changed.threads = 4;
    changed.checkpointDir = "/elsewhere";
    changed.resume = true;
    EXPECT_EQ(core::taskFingerprint(base),
              core::taskFingerprint(changed));
}

// ------------------------------------------------- evaluator warm-start ----

TEST(WarmStart, PreloadedPointsAreFreshExactlyOnceAndCountAsHits)
{
    dse::DseEvaluator source(sharedDatabase(),
                             al::ObstacleDensity::Dense);
    const dse::DesignSpace space;
    autopilot::util::Rng rng(0x5EED);
    std::vector<dse::Encoding> encodings;
    for (int i = 0; i < 6; ++i)
        encodings.push_back(space.randomEncoding(rng));
    source.evaluateBatch(encodings);
    const std::vector<dse::Evaluation> journal =
        source.allEvaluations();

    dse::DseEvaluator resumed(sharedDatabase(),
                              al::ObstacleDensity::Dense);
    resumed.preload(journal);
    EXPECT_EQ(resumed.allEvaluations().size(), journal.size());

    const auto first = resumed.evaluateBatch(encodings);
    for (const dse::BatchResult &entry : first)
        EXPECT_TRUE(entry.fresh) << "replay-fresh on first request";
    const auto second = resumed.evaluateBatch(encodings);
    for (const dse::BatchResult &entry : second)
        EXPECT_FALSE(entry.fresh) << "consumed after first request";

    const dse::CacheStats stats = resumed.cacheStats();
    EXPECT_EQ(stats.misses, 0u) << "replayed points never re-simulate";
    EXPECT_EQ(stats.hits, 2 * encodings.size());
}

TEST(WarmStart, TieredAdaptiveStateResumesByteIdentical)
{
    const dse::DesignSpace space;
    autopilot::util::Rng rng(0xBEEF);
    std::vector<dse::Encoding> encodings;
    std::set<dse::Encoding> seen;
    while (encodings.size() < 32) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            encodings.push_back(encoding);
    }

    dse::TieredPolicy policy;
    policy.adaptive = true;

    auto freshEvaluator = [&] {
        auto backend = std::make_unique<dse::TieredBackend>(
            dse::BackendContext{&sharedDatabase(),
                                al::ObstacleDensity::Dense, {}},
            policy);
        dse::TieredBackend *raw = backend.get();
        auto evaluator = std::make_unique<dse::DseEvaluator>(
            sharedDatabase(), al::ObstacleDensity::Dense,
            std::move(backend));
        return std::pair(std::move(evaluator), raw);
    };

    // Uninterrupted: four batches of eight.
    auto [golden, goldenBackend] = freshEvaluator();
    for (std::size_t b = 0; b < 4; ++b) {
        golden->evaluateBatch(std::span<const dse::Encoding>(
            encodings.data() + 8 * b, 8));
    }
    const auto goldenAll = golden->allEvaluations();
    ASSERT_EQ(goldenAll.size(), 32u);

    // Killed after batch 2: replay the 16-row journal prefix, then run
    // the remaining batches.
    auto [resumed, resumedBackend] = freshEvaluator();
    const std::vector<dse::Evaluation> prefix(goldenAll.begin(),
                                              goldenAll.begin() + 16);
    resumed->preload(prefix);
    EXPECT_EQ(resumedBackend->screenedCount(), 16u);
    for (std::size_t b = 2; b < 4; ++b) {
        resumed->evaluateBatch(std::span<const dse::Encoding>(
            encodings.data() + 8 * b, 8));
    }

    EXPECT_EQ(archiveCsv(resumed->allEvaluations()),
              archiveCsv(goldenAll));
    EXPECT_EQ(resumedBackend->currentBand(),
              goldenBackend->currentBand());
    EXPECT_EQ(resumedBackend->promotedCount(),
              goldenBackend->promotedCount());
}

// ------------------------------------------- pipeline resume equivalence ----

TEST(Resume, KillAfterAnyBatchReplaysByteIdenticalPerOptimizer)
{
    // For each optimizer: run uninterrupted with a journal, then
    // simulate a kill by truncating the journal to a prefix and
    // resuming at several thread counts. Archive AND final journal
    // must be byte-identical to the uninterrupted run.
    for (const std::string &optimizer :
         {std::string("bo"), std::string("nsga2"), std::string("sa"),
          std::string("random")}) {
        const fs::path goldenDir =
            testDir("resume_golden_" + optimizer);
        core::TaskSpec goldenSpec = smallSpec(optimizer);
        goldenSpec.checkpointDir = goldenDir.string();
        core::AutoPilot goldenPilot(goldenSpec);
        const std::string goldenArchive =
            archiveCsv(goldenPilot.phase2().archive);
        const std::string goldenJournal =
            fileBytes(goldenDir / "journal.csv");
        const std::size_t totalRows =
            journalRows(goldenDir / "journal.csv");
        ASSERT_GT(totalRows, 4u) << optimizer;

        for (const int threads : {1, 2, 4}) {
            const fs::path dir = testDir(
                "resume_" + optimizer + "_t" + std::to_string(threads));
            fs::copy(goldenDir, dir,
                     fs::copy_options::overwrite_existing |
                         fs::copy_options::recursive);
            truncateJournal(dir / "journal.csv", totalRows / 2);

            core::TaskSpec spec = goldenSpec;
            spec.checkpointDir = dir.string();
            spec.resume = true;
            spec.threads = threads;
            core::AutoPilot pilot(spec);
            EXPECT_EQ(archiveCsv(pilot.phase2().archive), goldenArchive)
                << optimizer << " @ " << threads << " threads";
            EXPECT_EQ(fileBytes(dir / "journal.csv"), goldenJournal)
                << optimizer << " @ " << threads << " threads";
            fs::remove_all(dir);
        }
        fs::remove_all(goldenDir);
    }
}

TEST(Resume, TieredBackendResumesByteIdentical)
{
    const fs::path goldenDir = testDir("resume_tiered_golden");
    core::TaskSpec goldenSpec = smallSpec("bo", "tiered");
    goldenSpec.checkpointDir = goldenDir.string();
    core::AutoPilot goldenPilot(goldenSpec);
    const std::string goldenArchive =
        archiveCsv(goldenPilot.phase2().archive);
    const std::size_t totalRows =
        journalRows(goldenDir / "journal.csv");
    ASSERT_GT(totalRows, 4u);

    const fs::path dir = testDir("resume_tiered");
    fs::copy(goldenDir, dir,
             fs::copy_options::overwrite_existing |
                 fs::copy_options::recursive);
    truncateJournal(dir / "journal.csv", totalRows / 3);

    core::TaskSpec spec = goldenSpec;
    spec.checkpointDir = dir.string();
    spec.resume = true;
    core::AutoPilot pilot(spec);
    EXPECT_EQ(archiveCsv(pilot.phase2().archive), goldenArchive);
    fs::remove_all(goldenDir);
    fs::remove_all(dir);
}

TEST(Resume, ContentionBackendResumesByteIdentical)
{
    // The contention profile is part of the fingerprint and its
    // aggregate traffic is journaled per row, so a killed contended
    // run must replay byte-identically at any thread count - and the
    // replayed rows must carry the profile back out of the journal.
    const double backgroundBps = 2.0e9;
    const fs::path goldenDir = testDir("resume_contention_golden");
    core::TaskSpec goldenSpec = smallSpec("bo", "contention");
    goldenSpec.contention.cameraBytesPerSec = backgroundBps;
    goldenSpec.checkpointDir = goldenDir.string();
    core::AutoPilot goldenPilot(goldenSpec);
    const std::string goldenArchive =
        archiveCsv(goldenPilot.phase2().archive);
    const std::string goldenJournal =
        fileBytes(goldenDir / "journal.csv");
    const std::size_t totalRows =
        journalRows(goldenDir / "journal.csv");
    ASSERT_GT(totalRows, 4u);
    for (const dse::Evaluation &eval : goldenPilot.phase2().archive)
        EXPECT_EQ(eval.contentionBytesPerSec, backgroundBps);

    for (const int threads : {1, 2, 4}) {
        const fs::path dir =
            testDir("resume_contention_t" + std::to_string(threads));
        fs::copy(goldenDir, dir,
                 fs::copy_options::overwrite_existing |
                     fs::copy_options::recursive);
        truncateJournal(dir / "journal.csv", totalRows / 2);

        // The truncated prefix must round-trip the profile's traffic.
        const io::JournalReplay replay =
            io::readEvalJournal((dir / "journal.csv").string());
        ASSERT_FALSE(replay.entries.empty());
        for (const dse::Evaluation &eval : replay.entries)
            EXPECT_EQ(eval.contentionBytesPerSec, backgroundBps);

        core::TaskSpec spec = goldenSpec;
        spec.checkpointDir = dir.string();
        spec.resume = true;
        spec.threads = threads;
        core::AutoPilot pilot(spec);
        EXPECT_EQ(archiveCsv(pilot.phase2().archive), goldenArchive)
            << threads << " threads";
        EXPECT_EQ(fileBytes(dir / "journal.csv"), goldenJournal)
            << threads << " threads";
        fs::remove_all(dir);
    }
    fs::remove_all(goldenDir);
}

TEST(Resume, DramBackendResumesByteIdentical)
{
    // The bank-level channel is folded into the fingerprint and its
    // tag is journaled per row, so a killed dram-backend run must
    // replay byte-identically at any thread count - and the replayed
    // rows must carry the channel tag back out of the journal.
    core::TaskSpec goldenSpec = smallSpec("bo", "dram");
    goldenSpec.dram =
        dram::uavDramSpec(dram::DramTiming{}, 1.0e9, 0.5e9);
    const std::string channelTag = goldenSpec.dram.tag();
    ASSERT_NE(channelTag, "-");

    const fs::path goldenDir = testDir("resume_dram_golden");
    goldenSpec.checkpointDir = goldenDir.string();
    core::AutoPilot goldenPilot(goldenSpec);
    const std::string goldenArchive =
        archiveCsv(goldenPilot.phase2().archive);
    const std::string goldenJournal =
        fileBytes(goldenDir / "journal.csv");
    const std::size_t totalRows =
        journalRows(goldenDir / "journal.csv");
    ASSERT_GT(totalRows, 4u);
    for (const dse::Evaluation &eval : goldenPilot.phase2().archive) {
        EXPECT_EQ(eval.dramKey, channelTag);
        EXPECT_EQ(eval.fidelity, dse::Fidelity::BankAccurate);
    }

    for (const int threads : {1, 2, 4}) {
        const fs::path dir =
            testDir("resume_dram_t" + std::to_string(threads));
        fs::copy(goldenDir, dir,
                 fs::copy_options::overwrite_existing |
                     fs::copy_options::recursive);
        truncateJournal(dir / "journal.csv", totalRows / 2);

        // The truncated prefix must round-trip the channel tag.
        const io::JournalReplay replay =
            io::readEvalJournal((dir / "journal.csv").string());
        ASSERT_FALSE(replay.entries.empty());
        for (const dse::Evaluation &eval : replay.entries)
            EXPECT_EQ(eval.dramKey, channelTag);

        core::TaskSpec spec = goldenSpec;
        spec.checkpointDir = dir.string();
        spec.resume = true;
        spec.threads = threads;
        core::AutoPilot pilot(spec);
        EXPECT_EQ(archiveCsv(pilot.phase2().archive), goldenArchive)
            << threads << " threads";
        EXPECT_EQ(fileBytes(dir / "journal.csv"), goldenJournal)
            << threads << " threads";
        fs::remove_all(dir);
    }
    fs::remove_all(goldenDir);
}

TEST(Fingerprint, DramChannelFoldsOnlyWhenEnabled)
{
    // A default (disabled) DramSpec must leave the fingerprint exactly
    // where the pre-dram layer put it: old journals resume unchanged.
    const core::TaskSpec base = smallSpec();
    core::TaskSpec with_disabled_dram = base;
    with_disabled_dram.dram.timing.banks = 16; // Timing alone is inert.
    EXPECT_EQ(core::taskFingerprint(base),
              core::taskFingerprint(with_disabled_dram));

    core::TaskSpec with_traffic = base;
    with_traffic.dram =
        dram::uavDramSpec(dram::DramTiming{}, 1.0e9, 0.0);
    EXPECT_NE(core::taskFingerprint(base),
              core::taskFingerprint(with_traffic));

    // Every result-affecting channel field moves the fingerprint.
    core::TaskSpec retimed = with_traffic;
    retimed.dram.timing.tCasCycles += 1;
    EXPECT_NE(core::taskFingerprint(with_traffic),
              core::taskFingerprint(retimed));
    core::TaskSpec repoliced = with_traffic;
    repoliced.dram.timing.rowPolicy = dram::RowPolicy::Closed;
    EXPECT_NE(core::taskFingerprint(with_traffic),
              core::taskFingerprint(repoliced));
}

TEST(Resume, TornHeaderJournalWarmStartsAsFresh)
{
    // End-to-end version of the zero-committed-rows cases: a journal
    // holding only the fingerprint line (or a torn header) must resume
    // into a run byte-identical to an uninterrupted fresh one.
    const fs::path goldenDir = testDir("resume_torn_golden");
    core::TaskSpec goldenSpec = smallSpec();
    goldenSpec.checkpointDir = goldenDir.string();
    core::AutoPilot goldenPilot(goldenSpec);
    const std::string goldenArchive =
        archiveCsv(goldenPilot.phase2().archive);
    const std::string goldenJournal =
        fileBytes(goldenDir / "journal.csv");

    const std::string fingerprintLine =
        "fingerprint," +
        io::formatFingerprint(core::taskFingerprint(goldenSpec)) + "\n";
    const std::vector<std::string> tornContents = {
        fingerprintLine,                       // header never flushed
        fingerprintLine + "layers_idx,filt"};  // torn header
    for (std::size_t i = 0; i < tornContents.size(); ++i) {
        const fs::path dir =
            testDir("resume_torn_" + std::to_string(i));
        {
            std::ofstream out(dir / "journal.csv", std::ios::trunc);
            out << tornContents[i];
        }
        core::TaskSpec spec = goldenSpec;
        spec.checkpointDir = dir.string();
        spec.resume = true;
        core::AutoPilot pilot(spec);
        EXPECT_EQ(archiveCsv(pilot.phase2().archive), goldenArchive)
            << "variant " << i;
        EXPECT_EQ(fileBytes(dir / "journal.csv"), goldenJournal)
            << "variant " << i;
        fs::remove_all(dir);
    }
    fs::remove_all(goldenDir);
}

TEST(Resume, MismatchedFingerprintStartsFresh)
{
    const fs::path dir = testDir("resume_mismatch");
    core::TaskSpec spec = smallSpec();
    spec.checkpointDir = dir.string();
    core::AutoPilot first(spec);
    const std::string firstArchive =
        archiveCsv(first.phase2().archive);

    // Same directory, different seed: the journal must be ignored and
    // rewritten, not replayed into the wrong problem.
    core::TaskSpec other = spec;
    other.seed ^= 0x5A5A;
    other.resume = true;
    core::AutoPilot second(other);
    const std::string secondArchive =
        archiveCsv(second.phase2().archive);
    EXPECT_NE(secondArchive, firstArchive);

    // And the journal now carries the new fingerprint.
    const io::JournalReplay replay =
        io::readEvalJournal((dir / "journal.csv").string());
    EXPECT_TRUE(replay.found);
    EXPECT_EQ(replay.fingerprint, core::taskFingerprint(other));
    fs::remove_all(dir);
}

// ------------------------------------------------------------ campaign ----

TEST(Campaign, RunsTasksAndReportsInOrder)
{
    runner::CampaignConfig config;
    config.concurrency = 2;
    config.retry = fastRetry();
    runner::CampaignRunner campaign(config);

    std::vector<runner::CampaignTask> tasks;
    for (const std::string &name : {"alpha", "beta"}) {
        runner::CampaignTask task;
        task.name = name;
        task.spec = smallSpec();
        task.spec.dseBudget = 12;
        task.uav = autopilot::uav::zhangNano();
        tasks.push_back(task);
    }
    const runner::CampaignReport report = campaign.run(tasks);
    ASSERT_EQ(report.outcomes.size(), 2u);
    EXPECT_EQ(report.succeededCount(), 2u);
    EXPECT_EQ(report.outcomes[0].name, "alpha");
    EXPECT_EQ(report.outcomes[1].name, "beta");
    for (const runner::TaskOutcome &outcome : report.outcomes) {
        EXPECT_EQ(outcome.status, runner::TaskStatus::Succeeded);
        EXPECT_EQ(outcome.attempts, 1);
        EXPECT_TRUE(outcome.diagnosis.empty());
        EXPECT_FALSE(outcome.run.candidates.empty());
    }
    // Identical specs, identical results: the campaign layer must not
    // perturb determinism.
    EXPECT_EQ(archiveCsv(report.outcomes[0].run.dseResult.archive),
              archiveCsv(report.outcomes[1].run.dseResult.archive));
}

TEST(Campaign, RetriesTransientFaultAndResumesFromJournal)
{
    ensureTestBackends();
    const fs::path root = testDir("campaign_flaky");

    runner::CampaignConfig config;
    config.rootDir = root.string();
    config.retry = fastRetry();
    runner::CampaignRunner campaign(config);

    runner::CampaignTask task;
    task.name = "flaky-task";
    task.spec = smallSpec("bo", "flaky");
    task.uav = autopilot::uav::zhangNano();

    // Golden: same backend, no injected failure.
    flakyCountdown.store(std::numeric_limits<int>::min() / 2);
    const runner::CampaignReport golden =
        campaign.run(std::vector<runner::CampaignTask>{task});
    ASSERT_EQ(golden.outcomes[0].status,
              runner::TaskStatus::Succeeded);
    const std::string goldenArchive =
        archiveCsv(golden.outcomes[0].run.dseResult.archive);

    // Fault at the 10th simulation: attempt 1 journals the committed
    // batches, fails, and attempt 2 warm-starts from that journal.
    fs::remove_all(root);
    flakyCountdown.store(10);
    const runner::CampaignReport report =
        campaign.run(std::vector<runner::CampaignTask>{task});
    flakyCountdown.store(std::numeric_limits<int>::min() / 2);

    ASSERT_EQ(report.outcomes.size(), 1u);
    EXPECT_EQ(report.outcomes[0].status,
              runner::TaskStatus::Succeeded);
    EXPECT_EQ(report.outcomes[0].attempts, 2);
    EXPECT_EQ(archiveCsv(report.outcomes[0].run.dseResult.archive),
              goldenArchive)
        << "retry must resume, not diverge";
    fs::remove_all(root);
}

TEST(Campaign, PermanentFaultDegradesToDiagnosedSkip)
{
    ensureTestBackends();
    runner::CampaignConfig config;
    config.retry = fastRetry(2);
    runner::CampaignRunner campaign(config);

    runner::CampaignTask broken;
    broken.name = "broken";
    broken.spec = smallSpec("bo", "alwaysfail");
    broken.uav = autopilot::uav::zhangNano();
    runner::CampaignTask healthy;
    healthy.name = "healthy";
    healthy.spec = smallSpec();
    healthy.spec.dseBudget = 12;
    healthy.uav = autopilot::uav::zhangNano();

    const runner::CampaignReport report = campaign.run(
        std::vector<runner::CampaignTask>{broken, healthy});
    ASSERT_EQ(report.outcomes.size(), 2u);
    EXPECT_EQ(report.outcomes[0].status, runner::TaskStatus::Failed);
    EXPECT_EQ(report.outcomes[0].attempts, 2);
    EXPECT_NE(report.outcomes[0].diagnosis.find("permanent"),
              std::string::npos);
    EXPECT_EQ(report.outcomes[1].status,
              runner::TaskStatus::Succeeded);
    EXPECT_EQ(report.succeededCount(), 1u);
    EXPECT_EQ(report.failedCount(), 1u);
    // The summary renders both rows.
    const std::string rendered = reportString(report);
    EXPECT_NE(rendered.find("failed"), std::string::npos);
    EXPECT_NE(rendered.find("1/2"), std::string::npos);
}

TEST(Campaign, DeadlineExpiryIsTerminal)
{
    runner::CampaignConfig config;
    config.retry = fastRetry(5);
    runner::CampaignRunner campaign(config);

    runner::CampaignTask task;
    task.name = "late";
    task.spec = smallSpec();
    task.spec.dseBudget = 12;
    task.uav = autopilot::uav::zhangNano();
    task.deadlineSeconds = 1e-9; // Expired before Phase 1 finishes.

    const runner::CampaignReport report =
        campaign.run(std::vector<runner::CampaignTask>{task});
    ASSERT_EQ(report.outcomes.size(), 1u);
    EXPECT_EQ(report.outcomes[0].status,
              runner::TaskStatus::DeadlineExpired);
    EXPECT_EQ(report.outcomes[0].attempts, 1)
        << "deadline expiry must not burn retry budget";
    EXPECT_NE(report.outcomes[0].diagnosis.find("deadline"),
              std::string::npos);
}

TEST(Campaign, ResumedCampaignReproducesUninterruptedReport)
{
    const fs::path root = testDir("campaign_resume");

    auto makeTasks = [] {
        std::vector<runner::CampaignTask> tasks;
        for (const al::ObstacleDensity density :
             {al::ObstacleDensity::Low, al::ObstacleDensity::Dense}) {
            runner::CampaignTask task;
            task.name = al::densityName(density);
            task.spec = smallSpec();
            task.spec.density = density;
            task.uav = autopilot::uav::zhangNano();
            tasks.push_back(task);
        }
        return tasks;
    };

    runner::CampaignConfig config;
    config.rootDir = root.string();
    config.retry = fastRetry();
    const std::string goldenReport = reportString(
        runner::CampaignRunner(config).run(makeTasks()));
    const std::string goldenJournal =
        fileBytes(root / "dense" / "journal.csv");

    // Simulate a campaign killed mid-flight: both journals lose their
    // tails, then the whole campaign re-runs with --resume.
    for (const char *name : {"low", "dense"}) {
        const fs::path journal = root / name / "journal.csv";
        truncateJournal(journal, journalRows(journal) / 2);
    }
    config.resume = true;
    const std::string resumedReport = reportString(
        runner::CampaignRunner(config).run(makeTasks()));

    EXPECT_EQ(resumedReport, goldenReport);
    EXPECT_EQ(fileBytes(root / "dense" / "journal.csv"),
              goldenJournal);
    fs::remove_all(root);
}

TEST(CampaignDeath, RejectsDuplicateOrUnnamedTasks)
{
    runner::CampaignTask a;
    a.name = "same";
    a.spec = smallSpec();
    runner::CampaignTask b = a;
    runner::CampaignRunner campaign;
    EXPECT_EXIT(campaign.run(std::vector<runner::CampaignTask>{a, b}),
                ::testing::ExitedWithCode(1), "duplicate");
    runner::CampaignTask unnamed;
    unnamed.spec = smallSpec();
    EXPECT_EXIT(
        campaign.run(std::vector<runner::CampaignTask>{unnamed}),
        ::testing::ExitedWithCode(1), "name");
}

// --------------------------------------- backoff + cancellation model ----

TEST(Retry, BackoffStaysFiniteAtExtremeAttemptCounts)
{
    // A long-lived daemon reaches attempt counts where the naive
    // pow(multiplier, attempt) product overflows to inf; the schedule
    // must clamp early instead of propagating inf (or, with a zero
    // initial backoff, 0 * inf == NaN) into sleep_for.
    util::RetryPolicy policy;
    policy.maxAttempts = std::numeric_limits<int>::max();
    policy.initialBackoffSeconds = 0.5;
    policy.backoffMultiplier = 10.0;
    policy.maxBackoffSeconds = 30.0;
    const double extreme = util::retryBackoffSeconds(
        policy, std::numeric_limits<int>::max());
    EXPECT_TRUE(std::isfinite(extreme));
    EXPECT_DOUBLE_EQ(extreme, 30.0);

    // Zero initial backoff: the fixed point must short-circuit the
    // loop, and the result must be exactly 0, never NaN.
    policy.initialBackoffSeconds = 0.0;
    policy.backoffMultiplier = 1e308;
    const double zero = util::retryBackoffSeconds(policy, 100000);
    EXPECT_DOUBLE_EQ(zero, 0.0);

    // Multiplier 1 (constant backoff) is legal and must not spin
    // attempt-many iterations to conclude the obvious.
    policy.initialBackoffSeconds = 5.0;
    policy.backoffMultiplier = 1.0;
    policy.maxBackoffSeconds = 60.0;
    EXPECT_DOUBLE_EQ(util::retryBackoffSeconds(
                         policy, std::numeric_limits<int>::max()),
                     5.0);
}

TEST(Retry, BackoffPropertyMonotoneClampedFinite)
{
    // Property sweep: for a grid of schedules, backoff as a function of
    // the attempt number is non-decreasing, clamped to the ceiling and
    // always finite.
    for (const double initial : {0.0, 1e-3, 0.25, 7.0}) {
        for (const double multiplier : {1.0, 1.5, 2.0, 64.0, 1e12}) {
            for (const double ceiling : {1e-3, 1.0, 1e6}) {
                util::RetryPolicy policy;
                policy.initialBackoffSeconds = initial;
                policy.backoffMultiplier = multiplier;
                policy.maxBackoffSeconds = ceiling;
                double previous = 0.0;
                for (int attempt = 2; attempt <= 40; ++attempt) {
                    const double backoff =
                        util::retryBackoffSeconds(policy, attempt);
                    ASSERT_TRUE(std::isfinite(backoff))
                        << initial << "*" << multiplier << "^" << attempt;
                    ASSERT_LE(backoff, ceiling);
                    ASSERT_GE(backoff, 0.0);
                    ASSERT_GE(backoff, previous)
                        << "backoff must be monotone in the attempt";
                    previous = backoff;
                }
            }
        }
    }
}

TEST(RetryDeath, RejectsNonFinitePolicies)
{
    util::RetryPolicy policy;
    policy.initialBackoffSeconds =
        std::numeric_limits<double>::infinity();
    EXPECT_DEATH(util::validateRetryPolicy(policy), "backoff");
    policy = {};
    policy.backoffMultiplier = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DEATH(util::validateRetryPolicy(policy), "backoff");
}

TEST(Retry, CancelledErrorIsNeverRetried)
{
    int calls = 0;
    EXPECT_THROW(util::retryWithBackoff(fastRetry(5),
                                        [&](int) -> int {
                                            ++calls;
                                            throw util::CancelledError(
                                                "draining");
                                        }),
                 util::CancelledError);
    EXPECT_EQ(calls, 1) << "a drain must not be fought with retries";
}

TEST(Cancel, DefaultTokenIsInert)
{
    const util::CancelToken token;
    EXPECT_FALSE(token.cancellable());
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.check("inert"));
}

TEST(Cancel, SourceCancelFlipsTokensAndChainsToChildren)
{
    util::CancelSource parent;
    const util::CancelSource child({}, parent.token());
    const util::CancelToken token = child.token();
    EXPECT_TRUE(token.cancellable());
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.check("before"));

    parent.cancel(); // Cancel the PARENT; the child token must see it.
    EXPECT_TRUE(token.cancelled());
    try {
        token.check("campaign 'x'");
        FAIL() << "check() must throw after cancel";
    } catch (const util::CancelledError &error) {
        EXPECT_NE(std::string(error.what()).find("campaign 'x'"),
                  std::string::npos);
    }
}

TEST(Cancel, ExpiredDeadlineThrowsDeadlineExceededNotCancelled)
{
    const util::CancelSource source(util::Deadline::after(1e-9));
    const util::CancelToken token = source.token();
    // DeadlineExceeded is terminal for the task while CancelledError is
    // resumable; conflating them would make a drained campaign look
    // permanently out of time.
    EXPECT_TRUE(token.cancelled());
    EXPECT_THROW(token.check("late"), util::DeadlineExceeded);
}

TEST(Cancel, PhaseOneChecksTokenBeforeAnyWork)
{
    core::TaskSpec spec = smallSpec();
    util::CancelSource cancel;
    cancel.cancel();
    spec.cancel = cancel.token();
    core::AutoPilot pilot(spec);
    EXPECT_THROW(pilot.phase1(), util::CancelledError);
}

TEST(Cancel, EvaluatorChecksAtBatchEntry)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    util::CancelSource cancel;
    evaluator.setCancelToken(cancel.token());
    // Before cancel: a batch goes through.
    EXPECT_NO_THROW(
        evaluator.evaluateBatch(std::span<const dse::Encoding>{}));
    cancel.cancel();
    EXPECT_THROW(
        evaluator.evaluateBatch(std::span<const dse::Encoding>{}),
        util::CancelledError);
}

TEST(Campaign, StopTokenCancelsWithoutRetryAndStaysResumable)
{
    const fs::path dir = testDir("campaign_stop");

    runner::CampaignTask task;
    task.name = "drained";
    task.spec = smallSpec();
    task.uav = autopilot::uav::zhangNano();

    // Drained run: the stop token is already cancelled, so the task
    // must end Cancelled on its first attempt without burning retries.
    {
        util::CancelSource stop;
        stop.cancel();
        runner::CampaignConfig config;
        config.rootDir = dir.string();
        config.retry = fastRetry(5);
        config.stop = stop.token();
        runner::CampaignRunner campaign(config);
        const runner::CampaignReport report =
            campaign.run(std::vector<runner::CampaignTask>{task});
        ASSERT_EQ(report.outcomes.size(), 1u);
        EXPECT_EQ(report.outcomes[0].status,
                  runner::TaskStatus::Cancelled);
        EXPECT_EQ(report.outcomes[0].attempts, 1)
            << "a drain must not be fought with retries";
        EXPECT_EQ(report.cancelledCount(), 1u);
        EXPECT_GT(report.failedCount(), 0u)
            << "cancelled counts as not-succeeded in the report";
    }

    // Restart without the stop token: the same campaign directory
    // resumes and completes; the report must equal a never-cancelled
    // run's byte for byte.
    runner::CampaignConfig config;
    config.rootDir = dir.string();
    config.resume = true;
    config.retry = fastRetry(3);
    runner::CampaignRunner campaign(config);
    const runner::CampaignReport resumed =
        campaign.run(std::vector<runner::CampaignTask>{task});
    ASSERT_EQ(resumed.succeededCount(), 1u);

    runner::CampaignConfig goldenConfig;
    goldenConfig.rootDir = testDir("campaign_stop_golden").string();
    goldenConfig.retry = fastRetry(3);
    runner::CampaignRunner golden(goldenConfig);
    const runner::CampaignReport uninterrupted =
        golden.run(std::vector<runner::CampaignTask>{task});
    EXPECT_EQ(reportString(resumed), reportString(uninterrupted));
}
