/**
 * @file
 * Tests for the CSV persistence layer: round-trips of the policy
 * database and the DSE archive, plus strict-parser failure modes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "airlearning/trainer.h"
#include "dse/evaluator.h"
#include "dse/random_search.h"
#include "io/csv.h"
#include "io/persistence.h"

namespace io = autopilot::io;
namespace al = autopilot::airlearning;
namespace dse = autopilot::dse;
namespace nn = autopilot::nn;

// ---------------------------------------------------------------- csv ----

TEST(Csv, SplitBasics)
{
    EXPECT_EQ(io::splitCsvLine("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(io::splitCsvLine("x"), (std::vector<std::string>{"x"}));
    EXPECT_EQ(io::splitCsvLine("a,,c"),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(io::splitCsvLine("a,"),
              (std::vector<std::string>{"a", ""}));
}

TEST(Csv, ReadWithHeaderValidation)
{
    std::istringstream is("x,y\n1,2\n3,4\n");
    const auto rows = io::readCsv(is, {"x", "y"});
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][1], "4");
}

TEST(CsvDeath, RejectsWrongHeader)
{
    std::istringstream is("a,b\n1,2\n");
    EXPECT_EXIT(io::readCsv(is, {"x", "y"}),
                ::testing::ExitedWithCode(1), "header");
}

TEST(CsvDeath, RejectsRaggedRow)
{
    std::istringstream is("x,y\n1,2,3\n");
    EXPECT_EXIT(io::readCsv(is, {"x", "y"}),
                ::testing::ExitedWithCode(1), "ragged");
}

TEST(Csv, ParseNumbers)
{
    EXPECT_DOUBLE_EQ(io::parseDouble("2.5e-3"), 2.5e-3);
    EXPECT_EQ(io::parseInt("-42"), -42);
    EXPECT_EQ(io::parseInt64("123456789012"), 123456789012LL);
}

TEST(CsvDeath, ParseRejectsGarbage)
{
    EXPECT_EXIT(io::parseDouble("12x"), ::testing::ExitedWithCode(1),
                "bad number");
    EXPECT_EXIT(io::parseInt(""), ::testing::ExitedWithCode(1),
                "bad integer");
}

TEST(CsvDeath, ParseRejectsWhitespaceAndEmpty)
{
    // strtod/strtol silently skip leading whitespace; the CSV parsers
    // must not, since whitespace in a machine-written numeric field
    // means the file is corrupt.
    EXPECT_EXIT(io::parseDouble(" 2.5"), ::testing::ExitedWithCode(1),
                "bad number");
    EXPECT_EXIT(io::parseDouble("2.5 "), ::testing::ExitedWithCode(1),
                "bad number");
    EXPECT_EXIT(io::parseDouble(""), ::testing::ExitedWithCode(1),
                "bad number.*empty");
    EXPECT_EXIT(io::parseInt(" 42"), ::testing::ExitedWithCode(1),
                "bad integer.*whitespace");
    EXPECT_EXIT(io::parseInt("42\t"), ::testing::ExitedWithCode(1),
                "bad integer");
    EXPECT_EXIT(io::parseInt64(""), ::testing::ExitedWithCode(1),
                "bad integer.*empty");
    EXPECT_EXIT(io::parseInt64(" 7"), ::testing::ExitedWithCode(1),
                "bad integer");
}

TEST(Csv, SplitToleratesTrailingCarriageReturn)
{
    EXPECT_EQ(io::splitCsvLine("a,b,c\r"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(io::splitCsvLine("x\r"), (std::vector<std::string>{"x"}));
    // A lone '\r' field (from "a,\r\n" minus the '\n') is the empty
    // last field of a trailing comma, not data.
    EXPECT_EQ(io::splitCsvLine("a,\r"),
              (std::vector<std::string>{"a", ""}));
}

TEST(Csv, CrlfRoundTripsIdenticallyToLf)
{
    const std::string lf = "x,y\n1,2\n3,4\n";
    const std::string crlf = "x,y\r\n1,2\r\n3,4\r\n";
    std::istringstream lf_is(lf);
    std::istringstream crlf_is(crlf);
    const auto lf_rows = io::readCsv(lf_is, {"x", "y"});
    const auto crlf_rows = io::readCsv(crlf_is, {"x", "y"});
    EXPECT_EQ(crlf_rows, lf_rows);
    ASSERT_EQ(crlf_rows.size(), 2u);
    EXPECT_EQ(crlf_rows[1][1], "4");
}

TEST(Csv, CrlfPolicyDatabaseLoads)
{
    // A database exported on a CRLF platform must load exactly like the
    // LF original; the '\r' must not leak into the last column.
    al::TrainerConfig config;
    config.validationEpisodes = 30;
    const al::Trainer trainer(config);
    al::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Low, db);

    std::stringstream buffer;
    io::writePolicyDatabase(db, buffer);
    std::string crlf;
    for (const char c : buffer.str()) {
        if (c == '\n')
            crlf += '\r';
        crlf += c;
    }
    std::istringstream crlf_is(crlf);
    const al::PolicyDatabase restored = io::readPolicyDatabase(crlf_is);
    ASSERT_EQ(restored.size(), db.size());
    for (const al::PolicyRecord &record : db.all()) {
        const auto loaded = restored.find(record.params, record.density);
        ASSERT_TRUE(loaded.has_value()) << record.policyId;
        EXPECT_EQ(loaded->converged, record.converged);
        EXPECT_EQ(loaded->trainingSteps, record.trainingSteps);
    }
}

// ------------------------------------------------- database round-trip ---

TEST(Persistence, PolicyDatabaseRoundTrip)
{
    al::TrainerConfig config;
    config.validationEpisodes = 30;
    const al::Trainer trainer(config);
    al::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Medium, db);

    std::stringstream buffer;
    io::writePolicyDatabase(db, buffer);
    const al::PolicyDatabase restored =
        io::readPolicyDatabase(buffer);

    ASSERT_EQ(restored.size(), db.size());
    for (const al::PolicyRecord &record : db.all()) {
        const auto loaded =
            restored.find(record.params, record.density);
        ASSERT_TRUE(loaded.has_value()) << record.policyId;
        EXPECT_EQ(loaded->policyId, record.policyId);
        EXPECT_DOUBLE_EQ(loaded->successRate, record.successRate);
        EXPECT_EQ(loaded->modelParams, record.modelParams);
        EXPECT_EQ(loaded->modelMacs, record.modelMacs);
        EXPECT_EQ(loaded->trainingSteps, record.trainingSteps);
        EXPECT_EQ(loaded->converged, record.converged);
    }
}

TEST(PersistenceDeath, PolicyDatabaseRejectsBadSuccessRate)
{
    std::istringstream is(
        "policy_id,layers,filters,density,success_rate,model_params,"
        "model_macs,training_steps,converged\n"
        "p,5,32,low,1.7,100,100,1000,1\n");
    EXPECT_EXIT(io::readPolicyDatabase(is),
                ::testing::ExitedWithCode(1), "success rate");
}

// -------------------------------------------------- archive round-trip ---

TEST(Persistence, DseArchiveRoundTrip)
{
    al::TrainerConfig trainer_config;
    trainer_config.validationEpisodes = 30;
    const al::Trainer trainer(trainer_config);
    al::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Dense, db);

    dse::DseEvaluator evaluator(db, al::ObstacleDensity::Dense);
    dse::RandomSearch search;
    dse::OptimizerConfig config;
    config.evaluationBudget = 15;
    const auto result = search.optimize(evaluator, config);

    std::stringstream buffer;
    io::writeDseArchive(result.archive, buffer);
    const auto restored = io::readDseArchive(buffer);

    ASSERT_EQ(restored.size(), result.archive.size());
    for (std::size_t i = 0; i < restored.size(); ++i) {
        EXPECT_EQ(restored[i].encoding, result.archive[i].encoding);
        EXPECT_EQ(restored[i].point, result.archive[i].point);
        EXPECT_DOUBLE_EQ(restored[i].successRate,
                         result.archive[i].successRate);
        EXPECT_DOUBLE_EQ(restored[i].latencyMs,
                         result.archive[i].latencyMs);
        EXPECT_EQ(restored[i].objectives, result.archive[i].objectives);
        EXPECT_EQ(restored[i].backend, result.archive[i].backend);
        EXPECT_EQ(restored[i].fidelity, result.archive[i].fidelity);
    }
}

TEST(Persistence, MixedFidelityArchiveRoundTrips)
{
    // A tiered-backend archive carries per-row fidelity tags; both tag
    // values must survive the trip.
    al::TrainerConfig trainer_config;
    trainer_config.validationEpisodes = 30;
    const al::Trainer trainer(trainer_config);
    al::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Dense, db);

    dse::DseEvaluator evaluator(db, al::ObstacleDensity::Dense,
                                "tiered");
    dse::RandomSearch search;
    dse::OptimizerConfig config;
    config.evaluationBudget = 20;
    const auto result = search.optimize(evaluator, config);

    std::stringstream buffer;
    io::writeDseArchive(result.archive, buffer);
    const auto restored = io::readDseArchive(buffer);

    ASSERT_EQ(restored.size(), result.archive.size());
    bool sawAnalytical = false;
    bool sawCycle = false;
    for (std::size_t i = 0; i < restored.size(); ++i) {
        EXPECT_EQ(restored[i].backend, "tiered");
        EXPECT_EQ(restored[i].fidelity, result.archive[i].fidelity);
        sawAnalytical |=
            restored[i].fidelity == dse::Fidelity::Analytical;
        sawCycle |=
            restored[i].fidelity == dse::Fidelity::CycleAccurate;
    }
    EXPECT_TRUE(sawAnalytical);
    EXPECT_TRUE(sawCycle);
}

TEST(Persistence, LegacyArchiveHeaderStillReads)
{
    // Pre-backend-layer archives have no backend/fidelity columns; they
    // must load with the analytical defaults.
    std::istringstream is(
        "layers_idx,filters_idx,pe_rows_idx,pe_cols_idx,ifmap_idx,"
        "filter_idx,ofmap_idx,success_rate,npu_power_w,soc_power_w,"
        "latency_ms,fps\n"
        "0,1,1,1,0,1,0,0.75,1.5,3.25,12.5,80\n");
    const auto restored = io::readDseArchive(is);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].backend, "analytical");
    EXPECT_EQ(restored[0].fidelity, dse::Fidelity::Analytical);
    EXPECT_DOUBLE_EQ(restored[0].successRate, 0.75);
    EXPECT_DOUBLE_EQ(restored[0].latencyMs, 12.5);
}

TEST(Persistence, EmptyArchiveRoundTrips)
{
    std::stringstream buffer;
    io::writeDseArchive({}, buffer);
    EXPECT_TRUE(io::readDseArchive(buffer).empty());
}
