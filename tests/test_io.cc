/**
 * @file
 * Tests for the CSV persistence layer: round-trips of the policy
 * database and the DSE archive, plus strict-parser failure modes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "airlearning/trainer.h"
#include "dse/evaluator.h"
#include "dse/random_search.h"
#include "io/csv.h"
#include "io/json.h"
#include "io/persistence.h"

namespace io = autopilot::io;
namespace al = autopilot::airlearning;
namespace dse = autopilot::dse;
namespace nn = autopilot::nn;

// ---------------------------------------------------------------- csv ----

TEST(Csv, SplitBasics)
{
    EXPECT_EQ(io::splitCsvLine("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(io::splitCsvLine("x"), (std::vector<std::string>{"x"}));
    EXPECT_EQ(io::splitCsvLine("a,,c"),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(io::splitCsvLine("a,"),
              (std::vector<std::string>{"a", ""}));
}

TEST(Csv, ReadWithHeaderValidation)
{
    std::istringstream is("x,y\n1,2\n3,4\n");
    const auto rows = io::readCsv(is, {"x", "y"});
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][1], "4");
}

TEST(CsvDeath, RejectsWrongHeader)
{
    std::istringstream is("a,b\n1,2\n");
    EXPECT_EXIT(io::readCsv(is, {"x", "y"}),
                ::testing::ExitedWithCode(1), "header");
}

TEST(CsvDeath, RejectsRaggedRow)
{
    std::istringstream is("x,y\n1,2,3\n");
    EXPECT_EXIT(io::readCsv(is, {"x", "y"}),
                ::testing::ExitedWithCode(1), "ragged");
}

TEST(Csv, ParseNumbers)
{
    EXPECT_DOUBLE_EQ(io::parseDouble("2.5e-3"), 2.5e-3);
    EXPECT_EQ(io::parseInt("-42"), -42);
    EXPECT_EQ(io::parseInt64("123456789012"), 123456789012LL);
}

TEST(CsvDeath, ParseRejectsGarbage)
{
    EXPECT_EXIT(io::parseDouble("12x"), ::testing::ExitedWithCode(1),
                "bad number");
    EXPECT_EXIT(io::parseInt(""), ::testing::ExitedWithCode(1),
                "bad integer");
}

TEST(CsvDeath, ParseRejectsWhitespaceAndEmpty)
{
    // strtod/strtol silently skip leading whitespace; the CSV parsers
    // must not, since whitespace in a machine-written numeric field
    // means the file is corrupt.
    EXPECT_EXIT(io::parseDouble(" 2.5"), ::testing::ExitedWithCode(1),
                "bad number");
    EXPECT_EXIT(io::parseDouble("2.5 "), ::testing::ExitedWithCode(1),
                "bad number");
    EXPECT_EXIT(io::parseDouble(""), ::testing::ExitedWithCode(1),
                "bad number.*empty");
    EXPECT_EXIT(io::parseInt(" 42"), ::testing::ExitedWithCode(1),
                "bad integer.*whitespace");
    EXPECT_EXIT(io::parseInt("42\t"), ::testing::ExitedWithCode(1),
                "bad integer");
    EXPECT_EXIT(io::parseInt64(""), ::testing::ExitedWithCode(1),
                "bad integer.*empty");
    EXPECT_EXIT(io::parseInt64(" 7"), ::testing::ExitedWithCode(1),
                "bad integer");
}

TEST(Csv, SplitToleratesTrailingCarriageReturn)
{
    EXPECT_EQ(io::splitCsvLine("a,b,c\r"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(io::splitCsvLine("x\r"), (std::vector<std::string>{"x"}));
    // A lone '\r' field (from "a,\r\n" minus the '\n') is the empty
    // last field of a trailing comma, not data.
    EXPECT_EQ(io::splitCsvLine("a,\r"),
              (std::vector<std::string>{"a", ""}));
}

TEST(Csv, CrlfRoundTripsIdenticallyToLf)
{
    const std::string lf = "x,y\n1,2\n3,4\n";
    const std::string crlf = "x,y\r\n1,2\r\n3,4\r\n";
    std::istringstream lf_is(lf);
    std::istringstream crlf_is(crlf);
    const auto lf_rows = io::readCsv(lf_is, {"x", "y"});
    const auto crlf_rows = io::readCsv(crlf_is, {"x", "y"});
    EXPECT_EQ(crlf_rows, lf_rows);
    ASSERT_EQ(crlf_rows.size(), 2u);
    EXPECT_EQ(crlf_rows[1][1], "4");
}

TEST(Csv, CrlfPolicyDatabaseLoads)
{
    // A database exported on a CRLF platform must load exactly like the
    // LF original; the '\r' must not leak into the last column.
    al::TrainerConfig config;
    config.validationEpisodes = 30;
    const al::Trainer trainer(config);
    al::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Low, db);

    std::stringstream buffer;
    io::writePolicyDatabase(db, buffer);
    std::string crlf;
    for (const char c : buffer.str()) {
        if (c == '\n')
            crlf += '\r';
        crlf += c;
    }
    std::istringstream crlf_is(crlf);
    const al::PolicyDatabase restored = io::readPolicyDatabase(crlf_is);
    ASSERT_EQ(restored.size(), db.size());
    for (const al::PolicyRecord &record : db.all()) {
        const auto loaded = restored.find(record.params, record.density);
        ASSERT_TRUE(loaded.has_value()) << record.policyId;
        EXPECT_EQ(loaded->converged, record.converged);
        EXPECT_EQ(loaded->trainingSteps, record.trainingSteps);
    }
}

// ------------------------------------------------- database round-trip ---

TEST(Persistence, PolicyDatabaseRoundTrip)
{
    al::TrainerConfig config;
    config.validationEpisodes = 30;
    const al::Trainer trainer(config);
    al::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Medium, db);

    std::stringstream buffer;
    io::writePolicyDatabase(db, buffer);
    const al::PolicyDatabase restored =
        io::readPolicyDatabase(buffer);

    ASSERT_EQ(restored.size(), db.size());
    for (const al::PolicyRecord &record : db.all()) {
        const auto loaded =
            restored.find(record.params, record.density);
        ASSERT_TRUE(loaded.has_value()) << record.policyId;
        EXPECT_EQ(loaded->policyId, record.policyId);
        EXPECT_DOUBLE_EQ(loaded->successRate, record.successRate);
        EXPECT_EQ(loaded->modelParams, record.modelParams);
        EXPECT_EQ(loaded->modelMacs, record.modelMacs);
        EXPECT_EQ(loaded->trainingSteps, record.trainingSteps);
        EXPECT_EQ(loaded->converged, record.converged);
    }
}

TEST(PersistenceDeath, PolicyDatabaseRejectsBadSuccessRate)
{
    std::istringstream is(
        "policy_id,layers,filters,density,success_rate,model_params,"
        "model_macs,training_steps,converged\n"
        "p,5,32,low,1.7,100,100,1000,1\n");
    EXPECT_EXIT(io::readPolicyDatabase(is),
                ::testing::ExitedWithCode(1), "success rate");
}

// -------------------------------------------------- archive round-trip ---

TEST(Persistence, DseArchiveRoundTrip)
{
    al::TrainerConfig trainer_config;
    trainer_config.validationEpisodes = 30;
    const al::Trainer trainer(trainer_config);
    al::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Dense, db);

    dse::DseEvaluator evaluator(db, al::ObstacleDensity::Dense);
    dse::RandomSearch search;
    dse::OptimizerConfig config;
    config.evaluationBudget = 15;
    const auto result = search.optimize(evaluator, config);

    std::stringstream buffer;
    io::writeDseArchive(result.archive, buffer);
    const auto restored = io::readDseArchive(buffer);

    ASSERT_EQ(restored.size(), result.archive.size());
    for (std::size_t i = 0; i < restored.size(); ++i) {
        EXPECT_EQ(restored[i].encoding, result.archive[i].encoding);
        EXPECT_EQ(restored[i].point, result.archive[i].point);
        EXPECT_DOUBLE_EQ(restored[i].successRate,
                         result.archive[i].successRate);
        EXPECT_DOUBLE_EQ(restored[i].latencyMs,
                         result.archive[i].latencyMs);
        EXPECT_EQ(restored[i].objectives, result.archive[i].objectives);
        EXPECT_EQ(restored[i].backend, result.archive[i].backend);
        EXPECT_EQ(restored[i].fidelity, result.archive[i].fidelity);
    }
}

TEST(Persistence, MixedFidelityArchiveRoundTrips)
{
    // A tiered-backend archive carries per-row fidelity tags; both tag
    // values must survive the trip.
    al::TrainerConfig trainer_config;
    trainer_config.validationEpisodes = 30;
    const al::Trainer trainer(trainer_config);
    al::PolicyDatabase db;
    trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Dense, db);

    dse::DseEvaluator evaluator(db, al::ObstacleDensity::Dense,
                                "tiered");
    dse::RandomSearch search;
    dse::OptimizerConfig config;
    config.evaluationBudget = 20;
    const auto result = search.optimize(evaluator, config);

    std::stringstream buffer;
    io::writeDseArchive(result.archive, buffer);
    const auto restored = io::readDseArchive(buffer);

    ASSERT_EQ(restored.size(), result.archive.size());
    bool sawAnalytical = false;
    bool sawCycle = false;
    for (std::size_t i = 0; i < restored.size(); ++i) {
        EXPECT_EQ(restored[i].backend, "tiered");
        EXPECT_EQ(restored[i].fidelity, result.archive[i].fidelity);
        sawAnalytical |=
            restored[i].fidelity == dse::Fidelity::Analytical;
        sawCycle |=
            restored[i].fidelity == dse::Fidelity::CycleAccurate;
    }
    EXPECT_TRUE(sawAnalytical);
    EXPECT_TRUE(sawCycle);
}

TEST(Persistence, LegacyArchiveHeaderStillReads)
{
    // Pre-backend-layer archives have no backend/fidelity columns; they
    // must load with the analytical defaults.
    std::istringstream is(
        "layers_idx,filters_idx,pe_rows_idx,pe_cols_idx,ifmap_idx,"
        "filter_idx,ofmap_idx,success_rate,npu_power_w,soc_power_w,"
        "latency_ms,fps\n"
        "0,1,1,1,0,1,0,0.75,1.5,3.25,12.5,80\n");
    const auto restored = io::readDseArchive(is);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].backend, "analytical");
    EXPECT_EQ(restored[0].fidelity, dse::Fidelity::Analytical);
    EXPECT_DOUBLE_EQ(restored[0].successRate, 0.75);
    EXPECT_DOUBLE_EQ(restored[0].latencyMs, 12.5);
}

TEST(Persistence, EmptyArchiveRoundTrips)
{
    std::stringstream buffer;
    io::writeDseArchive({}, buffer);
    EXPECT_TRUE(io::readDseArchive(buffer).empty());
}

namespace
{

/** Hand-build one archive evaluation with a chosen fidelity tag. */
dse::Evaluation
madeEvaluation(int seedIndex, dse::Fidelity fidelity,
               const std::string &backend)
{
    const dse::DesignSpace space;
    dse::Evaluation eval;
    // Vary only the seven classic dimensions: the precision dim has a
    // single choice in the default space, so any non-zero index there
    // would be out of range.
    for (std::size_t d = 0; d < dse::precisionDim; ++d)
        eval.encoding[d] = seedIndex % 2;
    eval.point = space.decode(eval.encoding);
    eval.successRate = 0.5 + 0.1 * seedIndex;
    eval.npuPowerW = 1.0 + seedIndex;
    eval.socPowerW = 2.0 + seedIndex;
    eval.latencyMs = 10.0 + seedIndex;
    eval.fps = 100.0 - seedIndex;
    eval.objectives = {1.0 - eval.successRate, eval.socPowerW,
                       eval.latencyMs};
    eval.fidelity = fidelity;
    eval.backend = backend;
    return eval;
}

/** Re-terminate every line of @p text with CRLF. */
std::string
crlfEncode(const std::string &text)
{
    std::string crlf;
    for (const char c : text) {
        if (c == '\n')
            crlf += '\r';
        crlf += c;
    }
    return crlf;
}

} // namespace

TEST(Csv, CrlfDseArchiveRoundTripsBackendAndFidelity)
{
    // An archive exported on a CRLF platform must restore the
    // backend/fidelity columns exactly; the '\r' lands on the fidelity
    // field (last column) and must not corrupt the tag.
    const std::vector<dse::Evaluation> archive = {
        madeEvaluation(0, dse::Fidelity::Analytical, "tiered"),
        madeEvaluation(1, dse::Fidelity::CycleAccurate, "tiered"),
    };
    std::stringstream buffer;
    io::writeDseArchive(archive, buffer);
    std::istringstream crlf_is(crlfEncode(buffer.str()));
    const auto restored = io::readDseArchive(crlf_is);
    ASSERT_EQ(restored.size(), 2u);
    EXPECT_EQ(restored[0].fidelity, dse::Fidelity::Analytical);
    EXPECT_EQ(restored[1].fidelity, dse::Fidelity::CycleAccurate);
    EXPECT_EQ(restored[0].backend, "tiered");
    EXPECT_EQ(restored[1].backend, "tiered");
    EXPECT_DOUBLE_EQ(restored[1].latencyMs, 11.0);
}

TEST(Csv, CrlfLegacyArchiveStillReads)
{
    std::istringstream is(
        "layers_idx,filters_idx,pe_rows_idx,pe_cols_idx,ifmap_idx,"
        "filter_idx,ofmap_idx,success_rate,npu_power_w,soc_power_w,"
        "latency_ms,fps\r\n"
        "0,1,1,1,0,1,0,0.75,1.5,3.25,12.5,80\r\n");
    const auto restored = io::readDseArchive(is);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].backend, "analytical");
    EXPECT_DOUBLE_EQ(restored[0].fps, 80.0);
}

// --------------------------------------------------- tolerant readers ---

TEST(Persistence, TryReadDseArchiveDiagnosesTornTail)
{
    const std::vector<dse::Evaluation> archive = {
        madeEvaluation(0, dse::Fidelity::Analytical, "analytical"),
        madeEvaluation(1, dse::Fidelity::Analytical, "analytical"),
    };
    std::stringstream buffer;
    io::writeDseArchive(archive, buffer);
    // Simulate a kill mid-append: the final record is cut short.
    std::string torn = buffer.str();
    torn += "0,1,0,1,0,1,0,0.6";
    std::istringstream is(torn);
    io::ParseDiag diag;
    const auto restored = io::tryReadDseArchive(is, diag);
    EXPECT_EQ(restored.size(), 2u); // Intact prefix survives.
    EXPECT_FALSE(diag.ok);
    EXPECT_EQ(diag.line, 4u); // Header + 2 rows + the torn one.
    EXPECT_NE(diag.reason.find("ragged"), std::string::npos)
        << diag.reason;
}

TEST(Persistence, TryReadDseArchiveDiagnosesBadNumber)
{
    std::stringstream buffer;
    io::writeDseArchive(
        {madeEvaluation(0, dse::Fidelity::Analytical, "analytical")},
        buffer);
    std::string corrupt = buffer.str();
    corrupt +=
        "0,1,0,1,0,1,0,NOT_A_NUMBER,1,2,3,4,analytical,cycle,0,-,-\n";
    std::istringstream is(corrupt);
    io::ParseDiag diag;
    const auto restored = io::tryReadDseArchive(is, diag);
    EXPECT_EQ(restored.size(), 1u);
    EXPECT_FALSE(diag.ok);
    EXPECT_EQ(diag.line, 3u);
    EXPECT_NE(diag.reason.find("bad number"), std::string::npos)
        << diag.reason;
}

TEST(Persistence, TryReadDseArchiveDiagnosesUnknownFidelity)
{
    std::stringstream buffer;
    io::writeDseArchive(
        {madeEvaluation(0, dse::Fidelity::Analytical, "analytical")},
        buffer);
    std::string corrupt = buffer.str();
    corrupt += "0,1,0,1,0,1,0,0.5,1,2,3,4,analytical,quantum,0,-,-\n";
    std::istringstream is(corrupt);
    io::ParseDiag diag;
    io::tryReadDseArchive(is, diag);
    EXPECT_FALSE(diag.ok);
    EXPECT_NE(diag.reason.find("unknown fidelity"), std::string::npos)
        << diag.reason;
}

TEST(Persistence, TryReadPolicyDatabaseDiagnosesBadLine)
{
    std::istringstream is(
        "policy_id,layers,filters,density,success_rate,model_params,"
        "model_macs,training_steps,converged\n"
        "p1,5,32,low,0.9,100,200,1000,1\n"
        "p2,5,48,low,oops,100,200,1000,1\n");
    io::ParseDiag diag;
    const al::PolicyDatabase db = io::tryReadPolicyDatabase(is, diag);
    EXPECT_EQ(db.size(), 1u); // The good row before the bad one.
    EXPECT_FALSE(diag.ok);
    EXPECT_EQ(diag.line, 3u);
    EXPECT_NE(diag.reason.find("bad number"), std::string::npos)
        << diag.reason;
}

TEST(Persistence, TryReadersAcceptCleanInput)
{
    std::stringstream buffer;
    io::writeDseArchive(
        {madeEvaluation(0, dse::Fidelity::CycleAccurate, "cycle")},
        buffer);
    io::ParseDiag diag;
    const auto restored = io::tryReadDseArchive(buffer, diag);
    EXPECT_TRUE(diag.ok);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].fidelity, dse::Fidelity::CycleAccurate);
}

TEST(Persistence, LegacyBackendArchiveHeaderStillReads)
{
    // Pre-contention-backend archives have backend/fidelity but no
    // contention column; they must load with zero background traffic.
    std::istringstream is(
        "layers_idx,filters_idx,pe_rows_idx,pe_cols_idx,ifmap_idx,"
        "filter_idx,ofmap_idx,success_rate,npu_power_w,soc_power_w,"
        "latency_ms,fps,backend,fidelity\n"
        "0,1,1,1,0,1,0,0.75,1.5,3.25,12.5,80,tiered,cycle\n");
    const auto restored = io::readDseArchive(is);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].backend, "tiered");
    EXPECT_EQ(restored[0].fidelity, dse::Fidelity::CycleAccurate);
    EXPECT_DOUBLE_EQ(restored[0].contentionBytesPerSec, 0.0);
}

TEST(Persistence, ContentionColumnRoundTrips)
{
    dse::Evaluation eval =
        madeEvaluation(1, dse::Fidelity::CycleAccurate, "contention");
    eval.contentionBytesPerSec = 3.2e9;
    std::stringstream buffer;
    io::writeDseArchive({eval}, buffer);
    const auto restored = io::readDseArchive(buffer);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].backend, "contention");
    EXPECT_DOUBLE_EQ(restored[0].contentionBytesPerSec, 3.2e9);
}

TEST(Persistence, TryReadDseArchiveDiagnosesBadContention)
{
    std::stringstream buffer;
    io::writeDseArchive(
        {madeEvaluation(0, dse::Fidelity::Analytical, "analytical")},
        buffer);
    std::string corrupt = buffer.str();
    corrupt += "0,1,0,1,0,1,0,0.5,1,2,3,4,analytical,cycle,-5,-,-\n";
    std::istringstream is(corrupt);
    io::ParseDiag diag;
    const auto restored = io::tryReadDseArchive(is, diag);
    EXPECT_EQ(restored.size(), 1u);
    EXPECT_FALSE(diag.ok);
    EXPECT_NE(diag.reason.find("contention"), std::string::npos)
        << diag.reason;
}

TEST(Persistence, ScenarioColumnRoundTrips)
{
    dse::Evaluation eval =
        madeEvaluation(1, dse::Fidelity::Analytical, "analytical");
    eval.scenario = "nav+survey";
    std::stringstream buffer;
    io::writeDseArchive({eval}, buffer);
    const auto restored = io::readDseArchive(buffer);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].scenario, "nav+survey");
    EXPECT_DOUBLE_EQ(restored[0].latencyMs, 11.0);
}

TEST(Persistence, LegacyContentionArchiveHeaderStillReads)
{
    // Pre-airframe archives end at the contention column; they must
    // load with the default "-" scenario tag, so a journal written
    // before the mission-mix layer resumes unchanged.
    std::istringstream is(
        "layers_idx,filters_idx,pe_rows_idx,pe_cols_idx,ifmap_idx,"
        "filter_idx,ofmap_idx,success_rate,npu_power_w,soc_power_w,"
        "latency_ms,fps,backend,fidelity,contention_bps\n"
        "0,1,1,1,0,1,0,0.75,1.5,3.25,12.5,80,contention,cycle,2.5e9\n");
    const auto restored = io::readDseArchive(is);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].scenario, "-");
    EXPECT_EQ(restored[0].backend, "contention");
    EXPECT_DOUBLE_EQ(restored[0].contentionBytesPerSec, 2.5e9);
}

TEST(Persistence, TryReadDseArchiveDiagnosesEmptyScenario)
{
    std::stringstream buffer;
    io::writeDseArchive(
        {madeEvaluation(0, dse::Fidelity::Analytical, "analytical")},
        buffer);
    std::string corrupt = buffer.str();
    corrupt += "0,1,0,1,0,1,0,0.5,1,2,3,4,analytical,cycle,0,,-\n";
    std::istringstream is(corrupt);
    io::ParseDiag diag;
    const auto restored = io::tryReadDseArchive(is, diag);
    EXPECT_EQ(restored.size(), 1u);
    EXPECT_FALSE(diag.ok);
    EXPECT_NE(diag.reason.find("scenario"), std::string::npos)
        << diag.reason;
}

TEST(Persistence, DramColumnRoundTrips)
{
    dse::Evaluation eval =
        madeEvaluation(1, dse::Fidelity::BankAccurate, "dram");
    eval.dramKey = "b8o-1a2b3c4d";
    std::stringstream buffer;
    io::writeDseArchive({eval}, buffer);
    const auto restored = io::readDseArchive(buffer);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].dramKey, "b8o-1a2b3c4d");
    EXPECT_EQ(restored[0].fidelity, dse::Fidelity::BankAccurate);
    EXPECT_EQ(restored[0].backend, "dram");
}

TEST(Persistence, LegacyScenarioArchiveHeaderStillReads)
{
    // Pre-dram archives end at the scenario column; they must load
    // with the default "-" dram tag, so a journal written before the
    // bank-level layer resumes unchanged.
    std::istringstream is(
        "layers_idx,filters_idx,pe_rows_idx,pe_cols_idx,ifmap_idx,"
        "filter_idx,ofmap_idx,success_rate,npu_power_w,soc_power_w,"
        "latency_ms,fps,backend,fidelity,contention_bps,scenario\n"
        "0,1,1,1,0,1,0,0.75,1.5,3.25,12.5,80,tiered,cycle,0,nav\n");
    const auto restored = io::readDseArchive(is);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].dramKey, "-");
    EXPECT_EQ(restored[0].scenario, "nav");
    EXPECT_EQ(restored[0].backend, "tiered");
}

TEST(Persistence, TryReadDseArchiveDiagnosesEmptyDramTag)
{
    std::stringstream buffer;
    io::writeDseArchive(
        {madeEvaluation(0, dse::Fidelity::Analytical, "analytical")},
        buffer);
    std::string corrupt = buffer.str();
    corrupt += "0,1,0,1,0,1,0,0.5,1,2,3,4,analytical,cycle,0,-,\n";
    std::istringstream is(corrupt);
    io::ParseDiag diag;
    const auto restored = io::tryReadDseArchive(is, diag);
    EXPECT_EQ(restored.size(), 1u);
    EXPECT_FALSE(diag.ok);
    EXPECT_NE(diag.reason.find("dram"), std::string::npos)
        << diag.reason;
}

TEST(Persistence, PrecisionColumnRoundTrips)
{
    // An archive whose first row carries a precision label is written
    // in the precision layout; the label restores the operand width on
    // read (the seven encoding columns stay precision-agnostic).
    dse::Evaluation eval =
        madeEvaluation(1, dse::Fidelity::Analytical, "quantized");
    eval.precision = "fp16";
    eval.point.accel.bytesPerElement = 2;
    std::stringstream buffer;
    io::writeDseArchive({eval}, buffer);
    EXPECT_NE(buffer.str().find(",precision\n"), std::string::npos);
    const auto restored = io::readDseArchive(buffer);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].precision, "fp16");
    EXPECT_EQ(restored[0].point.accel.bytesPerElement, 2);
    EXPECT_EQ(restored[0].backend, "quantized");
}

TEST(Persistence, DefaultArchiveOmitsPrecisionColumn)
{
    // Single-precision rows (precision "-") must keep writing the
    // legacy layout so pre-precision archives stay byte-identical.
    std::stringstream buffer;
    io::writeDseArchive(
        {madeEvaluation(0, dse::Fidelity::Analytical, "analytical")},
        buffer);
    EXPECT_EQ(buffer.str().find("precision"), std::string::npos);
    const auto restored = io::readDseArchive(buffer);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_EQ(restored[0].precision, "-");
    EXPECT_EQ(restored[0].point.accel.bytesPerElement, 1);
}

TEST(Persistence, TryReadDseArchiveDiagnosesUnknownPrecision)
{
    dse::Evaluation eval =
        madeEvaluation(0, dse::Fidelity::Analytical, "quantized");
    eval.precision = "int8";
    std::stringstream buffer;
    io::writeDseArchive({eval}, buffer);
    std::string corrupt = buffer.str();
    corrupt += "0,1,0,1,0,1,0,0.5,1,2,3,4,quantized,analytical,0,-,-,"
               "int9\n";
    std::istringstream is(corrupt);
    io::ParseDiag diag;
    const auto restored = io::tryReadDseArchive(is, diag);
    EXPECT_EQ(restored.size(), 1u);
    EXPECT_FALSE(diag.ok);
    EXPECT_NE(diag.reason.find("precision"), std::string::npos)
        << diag.reason;
}

TEST(Persistence, AcceptedHeadersCoverCurrentAndLegacyLayouts)
{
    const auto &headers = io::dseArchiveAcceptedHeaders();
    ASSERT_EQ(headers.size(), 6u);
    EXPECT_EQ(headers.front(), io::dsePrecisionArchiveHeader());
    EXPECT_EQ(headers.front().back(), "precision");
    // Each legacy layout drops exactly the trailing columns the newer
    // ones appended: precision, then dram, then scenario, then
    // contention, then backend/fidelity.
    EXPECT_EQ(headers[1], io::dseArchiveHeader());
    EXPECT_EQ(headers[1].back(), "dram");
    EXPECT_EQ(headers[1].size(), headers.front().size() - 1);
    EXPECT_EQ(headers[2].back(), "scenario");
    EXPECT_EQ(headers[2].size(), headers[1].size() - 1);
    EXPECT_EQ(headers[3].back(), "contention_bps");
    EXPECT_EQ(headers[3].size(), headers[2].size() - 1);
    EXPECT_EQ(headers[4].back(), "fidelity");
    EXPECT_EQ(headers.back().size(), 12u);
}

// --------------------------------------------------------------- json ----

TEST(Json, UnicodeEscapeBasicMultilingualPlane)
{
    const io::JsonValue v = io::parseJson("\"\\u0041\\u00e9\\u20ac\"");
    EXPECT_EQ(v.asString(), "A\xc3\xa9\xe2\x82\xac"); // A, e-acute, euro.
}

TEST(Json, UnicodeEscapeSurrogatePairDecodes)
{
    // U+1F680 (rocket) = \uD83D\uDE80 -> 4-byte UTF-8 F0 9F 9A 80.
    const io::JsonValue v = io::parseJson("\"\\ud83d\\ude80\"");
    EXPECT_EQ(v.asString(), "\xf0\x9f\x9a\x80");
    // Pair in the middle of a string, mixed case hex.
    const io::JsonValue mixed =
        io::parseJson("\"x\\uD83D\\uDE80y\"");
    EXPECT_EQ(mixed.asString(), "x\xf0\x9f\x9a\x80y");
}

TEST(JsonDeath, RejectsLoneHighSurrogate)
{
    EXPECT_EXIT(io::parseJson("\"\\ud83d\""),
                ::testing::ExitedWithCode(1), "surrogate");
    EXPECT_EXIT(io::parseJson("\"\\ud83d rest\""),
                ::testing::ExitedWithCode(1), "surrogate");
    // High surrogate followed by a non-surrogate escape.
    EXPECT_EXIT(io::parseJson("\"\\ud83d\\u0041\""),
                ::testing::ExitedWithCode(1), "surrogate");
}

TEST(JsonDeath, RejectsLoneLowSurrogate)
{
    EXPECT_EXIT(io::parseJson("\"\\ude80\""),
                ::testing::ExitedWithCode(1), "lone low surrogate");
}
