/**
 * @file
 * Tests for the DSSoC portfolio selector.
 */

#include <gtest/gtest.h>

#include "core/portfolio.h"

namespace core = autopilot::core;

namespace
{

core::TaskSpec
quickTask()
{
    core::TaskSpec task;
    task.validationEpisodes = 30;
    task.dseBudget = 25;
    return task;
}

} // namespace

TEST(Portfolio, CoversAllNineCells)
{
    core::PortfolioSelector selector(quickTask());
    EXPECT_EQ(selector.cells().size(), 9u);
    const core::PortfolioResult result = selector.select(2);
    EXPECT_EQ(result.assignments.size(), 9u);
    EXPECT_GE(result.accelerators.size(), 1u);
    EXPECT_LE(result.accelerators.size(), 2u);
    for (const core::CellAssignment &assignment : result.assignments) {
        EXPECT_LT(assignment.designIndex, result.accelerators.size());
        EXPECT_GE(assignment.missions, 0.0);
        EXPECT_GE(assignment.cellOptimalMissions,
                  assignment.missions - 1e-9);
    }
}

TEST(Portfolio, MoreDesignsNeverHurt)
{
    core::PortfolioSelector selector(quickTask());
    const auto one = selector.select(1);
    const auto three = selector.select(3);
    EXPECT_LE(three.meanDegradationPct(),
              one.meanDegradationPct() + 1e-9);
    EXPECT_LE(three.maxDegradationPct(),
              one.maxDegradationPct() + 1e-9);
}

TEST(Portfolio, DegradationBoundedByCellOptima)
{
    core::PortfolioSelector selector(quickTask());
    const auto result = selector.select(3);
    for (const core::CellAssignment &assignment : result.assignments) {
        EXPECT_GE(assignment.degradationPct, -1e-9);
        EXPECT_LE(assignment.degradationPct, 100.0);
    }
    EXPECT_GE(result.meanDegradationPct(), 0.0);
    EXPECT_GE(result.maxDegradationPct(),
              result.meanDegradationPct() - 1e-9);
}

TEST(Portfolio, CellNamesAreDistinct)
{
    core::PortfolioSelector selector(quickTask());
    std::vector<std::string> names;
    for (const core::PortfolioCell &cell : selector.cells())
        names.push_back(cell.name());
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(PortfolioDeath, RejectsZeroDesigns)
{
    core::PortfolioSelector selector(quickTask());
    EXPECT_EXIT(selector.select(0), ::testing::ExitedWithCode(1),
                "positive");
}
