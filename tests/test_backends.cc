/**
 * @file
 * Backend-parity suite for the pluggable cost-model layer:
 *
 *  - AnalyticalBackend reproduces the pre-backend-layer evaluator
 *    formula bit for bit (the golden guarantee that lets the default
 *    pipeline stay byte-identical across the refactor).
 *  - CycleBackend agrees with the analytical numbers within the
 *    engine-validation tolerance (the analytical runtime brackets the
 *    cycle-stepped runtime) and only the timing-derived metrics differ.
 *  - TieredBackend is deterministic across 1/2/4 worker threads (exact
 *    ==, the same rule test_parallel_eval.cc enforces), promotes a
 *    strict subset of points, and tags each archived evaluation with
 *    the fidelity that produced it.
 *  - The registry resolves the built-ins, rejects unknown names, and
 *    accepts runtime registration of custom backends.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "airlearning/trainer.h"
#include "dse/eval_backend.h"
#include "dse/evaluator.h"
#include "dse/random_search.h"
#include "nn/e2e_template.h"
#include "power/npu_power.h"
#include "power/soc_power.h"
#include "systolic/engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dse = autopilot::dse;
namespace al = autopilot::airlearning;
namespace nn = autopilot::nn;
namespace sys = autopilot::systolic;
namespace pw = autopilot::power;
namespace util = autopilot::util;

namespace
{

const al::PolicyDatabase &
sharedDatabase()
{
    static const al::PolicyDatabase db = [] {
        al::TrainerConfig config;
        config.validationEpisodes = 40;
        const al::Trainer trainer(config);
        al::PolicyDatabase built;
        trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Dense,
                         built);
        return built;
    }();
    return db;
}

dse::BackendContext
sharedContext()
{
    return {&sharedDatabase(), al::ObstacleDensity::Dense, {}};
}

std::vector<dse::Encoding>
distinctEncodings(std::size_t count, std::uint64_t seed)
{
    const dse::DesignSpace space;
    util::Rng rng(seed);
    std::vector<dse::Encoding> out;
    std::set<dse::Encoding> seen;
    while (out.size() < count) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            out.push_back(encoding);
    }
    return out;
}

/**
 * The pre-backend-layer DseEvaluator::compute() formula, spelled out
 * by hand: any divergence between this and AnalyticalBackend breaks
 * the bit-identical guarantee the golden pipeline tests rely on.
 */
dse::Evaluation
legacyCompute(const dse::Encoding &encoding)
{
    const dse::DesignSpace space;
    dse::Evaluation evaluation;
    evaluation.encoding = encoding;
    evaluation.point = space.decode(encoding);

    const auto record = sharedDatabase().find(evaluation.point.policy,
                                              al::ObstacleDensity::Dense);
    evaluation.successRate = record->successRate;

    const nn::Model model = nn::buildE2EModel(evaluation.point.policy);
    const sys::AnalyticalEngine engine(evaluation.point.accel);
    const sys::RunResult run = engine.run(model);

    const pw::NpuPowerModel npu(evaluation.point.accel);
    evaluation.npuPowerW = npu.averagePowerW(run);
    evaluation.socPowerW = pw::socPower(evaluation.npuPowerW).totalW();

    const double clock = evaluation.point.accel.clockGhz;
    evaluation.latencyMs = run.runtimeSeconds(clock) * 1e3;
    evaluation.fps = run.framesPerSecond(clock);

    evaluation.objectives = {1.0 - evaluation.successRate,
                             evaluation.socPowerW, evaluation.latencyMs};
    return evaluation;
}

} // namespace

// ------------------------------------------------------------- registry ----

TEST(BackendRegistry, KnowsTheBuiltins)
{
    dse::BackendRegistry &registry = dse::BackendRegistry::instance();
    EXPECT_TRUE(registry.knows("analytical"));
    EXPECT_TRUE(registry.knows("cycle"));
    EXPECT_TRUE(registry.knows("tiered"));
    EXPECT_TRUE(registry.knows("contention"));
    EXPECT_TRUE(registry.knows("dram"));
    EXPECT_FALSE(registry.knows("no-such-backend"));

    const auto context = sharedContext();
    EXPECT_EQ(dse::makeBackend("analytical", context)->fidelity(),
              dse::Fidelity::Analytical);
    EXPECT_EQ(dse::makeBackend("cycle", context)->fidelity(),
              dse::Fidelity::CycleAccurate);
    EXPECT_EQ(dse::makeBackend("tiered", context)->fidelity(),
              dse::Fidelity::Mixed);
    EXPECT_EQ(dse::makeBackend("contention", context)->fidelity(),
              dse::Fidelity::CycleAccurate);
    // A disabled DramSpec degrades the dram backend to the pure cycle
    // path, and its advertised fidelity says so.
    EXPECT_EQ(dse::makeBackend("dram", context)->fidelity(),
              dse::Fidelity::CycleAccurate);
}

TEST(BackendRegistry, UnknownNameIsFatal)
{
    const auto context = sharedContext();
    EXPECT_EXIT(dse::makeBackend("warp-drive", context),
                ::testing::ExitedWithCode(1), "unknown backend");
}

TEST(BackendRegistry, CustomBackendPlugsIntoTheEvaluator)
{
    // A registered factory becomes reachable by name; the evaluator
    // archives the custom backend's fidelity/name tags.
    dse::BackendRegistry::instance().registerFactory(
        "test-analytical-clone", [](const dse::BackendContext &context) {
            return std::make_unique<dse::AnalyticalBackend>(context);
        });
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense,
                                "test-analytical-clone");
    EXPECT_EQ(evaluator.backendName(), "analytical");
    const auto points = distinctEncodings(2, 5);
    const dse::Evaluation &eval = evaluator.evaluate(points[0]);
    EXPECT_EQ(eval.fidelity, dse::Fidelity::Analytical);
}

// ------------------------------------------------------ analytical golden ----

TEST(AnalyticalBackend, BitIdenticalToLegacyComputeFormula)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    EXPECT_EQ(evaluator.backendName(), "analytical");

    for (const dse::Encoding &encoding : distinctEncodings(24, 17)) {
        const dse::Evaluation &actual = evaluator.evaluate(encoding);
        const dse::Evaluation expected = legacyCompute(encoding);
        EXPECT_EQ(actual.successRate, expected.successRate);
        EXPECT_EQ(actual.npuPowerW, expected.npuPowerW);
        EXPECT_EQ(actual.socPowerW, expected.socPowerW);
        EXPECT_EQ(actual.latencyMs, expected.latencyMs);
        EXPECT_EQ(actual.fps, expected.fps);
        EXPECT_EQ(actual.objectives, expected.objectives);
        EXPECT_EQ(actual.fidelity, dse::Fidelity::Analytical);
        EXPECT_EQ(actual.backend, "analytical");
    }
}

// ------------------------------------------------------- cycle tolerance ----

TEST(CycleBackend, AgreesWithAnalyticalWithinValidationTolerance)
{
    dse::DseEvaluator analytical(sharedDatabase(),
                                 al::ObstacleDensity::Dense,
                                 "analytical");
    dse::DseEvaluator cycle(sharedDatabase(), al::ObstacleDensity::Dense,
                            "cycle");

    for (const dse::Encoding &encoding : distinctEncodings(12, 29)) {
        const dse::Evaluation &fast = analytical.evaluate(encoding);
        const dse::Evaluation &reference = cycle.evaluate(encoding);
        EXPECT_EQ(reference.fidelity, dse::Fidelity::CycleAccurate);
        EXPECT_EQ(reference.backend, "cycle");

        // Success rate comes from Phase 1, not the engine.
        EXPECT_EQ(fast.successRate, reference.successRate);
        // Timing-derived metrics track the reference engine within the
        // bench_engine_validation band (p95 error is a few percent;
        // 15% is the generous outer envelope).
        EXPECT_NEAR(fast.latencyMs, reference.latencyMs,
                    0.15 * reference.latencyMs);
        EXPECT_NEAR(fast.socPowerW, reference.socPowerW,
                    0.15 * reference.socPowerW);
        EXPECT_GT(reference.latencyMs, 0.0);
    }
}

// ------------------------------------------------- tiered determinism ----

TEST(TieredBackend, ByteIdenticalAcrossThreadCounts)
{
    const auto points = distinctEncodings(48, 41);

    auto runAt = [&](std::size_t threads) {
        std::unique_ptr<util::ThreadPool> pool;
        if (threads > 1)
            pool = std::make_unique<util::ThreadPool>(threads);
        dse::DseEvaluator evaluator(sharedDatabase(),
                                    al::ObstacleDensity::Dense, "tiered");
        evaluator.setThreadPool(pool.get());
        // Several batches so the promotion state carries across calls.
        const std::size_t half = points.size() / 2;
        evaluator.evaluateBatch(std::span<const dse::Encoding>(
            points.data(), half));
        evaluator.evaluateBatch(std::span<const dse::Encoding>(
            points.data() + half, points.size() - half));
        return evaluator.allEvaluations();
    };

    const auto serial = runAt(1);
    ASSERT_EQ(serial.size(), points.size());
    for (std::size_t threads : {2u, 4u}) {
        const auto parallel = runAt(threads);
        ASSERT_EQ(parallel.size(), serial.size())
            << threads << " threads";
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].encoding, parallel[i].encoding)
                << "position " << i;
            EXPECT_EQ(serial[i].objectives, parallel[i].objectives)
                << "position " << i;
            EXPECT_EQ(serial[i].fidelity, parallel[i].fidelity)
                << "position " << i;
            EXPECT_EQ(serial[i].latencyMs, parallel[i].latencyMs)
                << "position " << i;
            EXPECT_EQ(serial[i].npuPowerW, parallel[i].npuPowerW)
                << "position " << i;
        }
    }
}

TEST(TieredBackend, PromotesCompetitiveSubsetAndTagsFidelity)
{
    auto backend = std::make_unique<dse::TieredBackend>(sharedContext());
    const dse::TieredBackend *tiered = backend.get();
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense,
                                std::move(backend));
    EXPECT_EQ(evaluator.backendName(), "tiered");

    const auto points = distinctEncodings(64, 53);
    evaluator.evaluateBatch(points);

    EXPECT_EQ(tiered->screenedCount(), points.size());
    const std::size_t promoted = tiered->promotedCount();
    // The first point is always on the (empty) front -> promoted; a
    // random pool is mostly dominated -> a strict subset is promoted.
    EXPECT_GE(promoted, 1u);
    EXPECT_LT(promoted, points.size());

    std::size_t cycleTagged = 0;
    for (const dse::Evaluation &eval : evaluator.allEvaluations()) {
        EXPECT_EQ(eval.backend, "tiered");
        if (eval.fidelity == dse::Fidelity::CycleAccurate)
            ++cycleTagged;
        else
            EXPECT_EQ(eval.fidelity, dse::Fidelity::Analytical);
    }
    EXPECT_EQ(cycleTagged, promoted);
}

TEST(TieredBackend, FrontMembersCarryCycleNumbers)
{
    // Every evaluation on the final Pareto front must have been
    // promoted: the band test passes for any point whose own
    // contribution is positive, which includes all front members.
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense, "tiered");
    dse::RandomSearch search;
    dse::OptimizerConfig config;
    config.evaluationBudget = 40;
    config.seed = 0xF1DE;
    const dse::OptimizerResult result =
        search.optimize(evaluator, config);

    // Every screened-front member is promoted by construction; an
    // analytical row can reach the *final* front only when the cycle
    // re-evaluation reshuffles dominance inside the band. Assert the
    // bulk invariant: the majority of the front is cycle-verified.
    std::size_t cycleOnFront = 0;
    const auto frontIdx = result.frontIndices();
    for (std::size_t index : frontIdx) {
        if (result.archive[index].fidelity ==
            dse::Fidelity::CycleAccurate)
            ++cycleOnFront;
    }
    EXPECT_GE(2 * cycleOnFront, frontIdx.size())
        << "most of the final front should be cycle-verified";
}

// ------------------------------------------------------- adaptive band ----

TEST(TieredBackend, StaticBandNeverMoves)
{
    dse::TieredPolicy policy;
    ASSERT_FALSE(policy.adaptive);
    dse::TieredBackend backend(sharedContext(), policy);
    EXPECT_DOUBLE_EQ(backend.currentBand(), policy.promotionBand);

    const auto points = distinctEncodings(24, 901);
    dse::DseEvaluator evaluator(
        sharedDatabase(), al::ObstacleDensity::Dense,
        std::make_unique<dse::TieredBackend>(sharedContext(), policy));
    evaluator.evaluateBatch(points);
    const auto &tiered =
        static_cast<const dse::TieredBackend &>(evaluator.backend());
    EXPECT_DOUBLE_EQ(tiered.currentBand(), policy.promotionBand);
}

TEST(TieredBackend, AdaptiveBandTracksMeasuredErrorWithinClamp)
{
    dse::TieredPolicy policy;
    policy.adaptive = true;
    auto backend =
        std::make_unique<dse::TieredBackend>(sharedContext(), policy);
    const dse::TieredBackend *tiered = backend.get();
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense,
                                std::move(backend));

    const auto points = distinctEncodings(40, 902);
    evaluator.evaluateBatch(points);
    ASSERT_GT(tiered->promotedCount(), 0u)
        << "no promotions means no error samples to adapt from";
    // Promotions happened, so the band has been re-derived from
    // measured analytical-vs-cycle latency error - it must sit inside
    // the clamp and (with the default 2 % starting band and the
    // engines' sub-percent agreement) should have moved off the
    // default.
    const double band = tiered->currentBand();
    EXPECT_GE(band, policy.minBand);
    EXPECT_LE(band, policy.maxBand);
    EXPECT_NE(band, policy.promotionBand);
}

TEST(TieredBackend, AdaptiveBandIsDeterministicAcrossThreadCounts)
{
    const auto points = distinctEncodings(32, 903);
    auto runAt = [&](std::size_t threads) {
        std::unique_ptr<util::ThreadPool> pool;
        if (threads > 1)
            pool = std::make_unique<util::ThreadPool>(threads);
        dse::TieredPolicy policy;
        policy.adaptive = true;
        auto backend = std::make_unique<dse::TieredBackend>(
            sharedContext(), policy);
        const dse::TieredBackend *tiered = backend.get();
        dse::DseEvaluator evaluator(sharedDatabase(),
                                    al::ObstacleDensity::Dense,
                                    std::move(backend));
        evaluator.setThreadPool(pool.get());
        const std::size_t half = points.size() / 2;
        evaluator.evaluateBatch(
            std::span<const dse::Encoding>(points.data(), half));
        evaluator.evaluateBatch(std::span<const dse::Encoding>(
            points.data() + half, points.size() - half));
        return tiered->currentBand();
    };
    const double serial = runAt(1);
    EXPECT_EQ(serial, runAt(2));
    EXPECT_EQ(serial, runAt(4));
}

TEST(TieredBackendDeath, AdaptiveClampMustBeOrdered)
{
    dse::TieredPolicy policy;
    policy.adaptive = true;
    policy.minBand = 0.2;
    policy.maxBand = 0.1;
    EXPECT_EXIT(dse::TieredBackend(sharedContext(), policy),
                ::testing::ExitedWithCode(1), "minBand");
}

// --------------------------------------------------- encoding hash reuse ----

TEST(DesignSpace, HashEncodingIsStableAndSpreads)
{
    const auto points = distinctEncodings(64, 77);
    std::set<std::size_t> buckets;
    for (const dse::Encoding &encoding : points) {
        EXPECT_EQ(dse::hashEncoding(encoding),
                  dse::hashEncoding(encoding));
        buckets.insert(dse::hashEncoding(encoding) % 16);
    }
    // FNV-1a over 64 distinct points should touch most of 16 shards.
    EXPECT_GE(buckets.size(), 8u);
}

// ------------------------------------------------------------ contention ----

namespace
{

dse::BackendContext
contendedContext(double backgroundBytesPerSec)
{
    dse::BackendContext context = sharedContext();
    context.contention.cameraBytesPerSec = backgroundBytesPerSec;
    return context;
}

} // namespace

TEST(ContentionBackend, ZeroBackgroundBitIdenticalToCycle)
{
    dse::ContentionBackend quiet(sharedContext());
    dse::CycleBackend cycle(sharedContext());
    const dse::DesignSpace space;
    for (const dse::Encoding &encoding : distinctEncodings(8, 41)) {
        const dse::DesignPoint point = space.decode(encoding);
        const dse::Evaluation a = quiet.evaluate(point);
        const dse::Evaluation b = cycle.evaluate(point);
        EXPECT_EQ(a.successRate, b.successRate);
        EXPECT_EQ(a.npuPowerW, b.npuPowerW);
        EXPECT_EQ(a.socPowerW, b.socPowerW);
        EXPECT_EQ(a.latencyMs, b.latencyMs);
        EXPECT_EQ(a.fps, b.fps);
        EXPECT_EQ(a.objectives, b.objectives);
        EXPECT_EQ(a.fidelity, dse::Fidelity::CycleAccurate);
        EXPECT_EQ(a.backend, "contention");
        EXPECT_EQ(a.contentionBytesPerSec, 0.0);
    }
}

TEST(ContentionBackend, BackgroundTrafficShiftsLatencyAndPowerMonotonically)
{
    // All design points share the fixed 6.4 GB/s channel (32 B/cycle at
    // 0.2 GHz), so a rising background load must never make any point
    // faster or cheaper on DRAM power.
    const dse::DesignSpace space;
    const auto encodings = distinctEncodings(6, 53);
    std::vector<double> previousLatency(encodings.size(), 0.0);
    double quietTotal = 0.0;
    double heavyTotal = 0.0;
    for (const double background : {0.0, 1.6e9, 3.2e9, 4.8e9}) {
        dse::ContentionBackend backend(contendedContext(background));
        for (std::size_t i = 0; i < encodings.size(); ++i) {
            const dse::Evaluation eval =
                backend.evaluate(space.decode(encodings[i]));
            EXPECT_GE(eval.latencyMs, previousLatency[i])
                << "background " << background;
            EXPECT_EQ(eval.contentionBytesPerSec, background);
            previousLatency[i] = eval.latencyMs;
            if (background == 0.0)
                quietTotal += eval.latencyMs;
            if (background == 4.8e9)
                heavyTotal += eval.latencyMs;
        }
    }
    // A quarter of the channel must bite somewhere in the sample.
    EXPECT_GT(heavyTotal, quietTotal);
}

TEST(ContentionBackend, ComposesAsTieredVerifyTier)
{
    // The tiered verify tier inherits the context's contention profile:
    // promoted rows carry cycle fidelity, the contention bytes/s, and
    // strictly-no-faster latency than the contention-free tiered run.
    dse::TieredBackend quiet(sharedContext());
    dse::TieredBackend contended(contendedContext(3.2e9));
    const dse::DesignSpace space;
    std::vector<dse::DesignPoint> points;
    for (const dse::Encoding &encoding : distinctEncodings(24, 67))
        points.push_back(space.decode(encoding));

    auto runBatch = [&](dse::TieredBackend &backend) {
        std::vector<dse::Evaluation> out(points.size());
        backend.evaluateBatch(
            points, nullptr,
            [&](std::size_t i, dse::Evaluation &&eval) {
                out[i] = std::move(eval);
            });
        return out;
    };
    const auto quietEvals = runBatch(quiet);
    const auto contendedEvals = runBatch(contended);

    std::size_t promoted = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (contendedEvals[i].fidelity != dse::Fidelity::CycleAccurate)
            continue;
        ++promoted;
        EXPECT_EQ(contendedEvals[i].contentionBytesPerSec, 3.2e9);
        if (quietEvals[i].fidelity == dse::Fidelity::CycleAccurate)
            EXPECT_GE(contendedEvals[i].latencyMs,
                      quietEvals[i].latencyMs);
    }
    EXPECT_GT(promoted, 0u);
}

TEST(ContentionBackendDeath, StarvedProfileDiagnosedAtEvaluate)
{
    // 6.4 GB/s background saturates the fixed-peak channel; with no QoS
    // floor the first evaluation must diagnose the infeasible profile
    // instead of producing inf fold times.
    dse::ContentionBackend backend(contendedContext(6.4e9));
    const dse::DesignSpace space;
    const auto encodings = distinctEncodings(1, 71);
    EXPECT_EXIT(backend.evaluate(space.decode(encodings[0])),
                ::testing::ExitedWithCode(1), "no DRAM bandwidth");
}
