/**
 * @file
 * Tests for the batch-parallel evaluation core: the util::ThreadPool,
 * the concurrent memo cache of DseEvaluator::evaluateBatch, and the
 * hard determinism requirement that every optimizer produces a
 * byte-identical result with and without worker threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "airlearning/trainer.h"
#include "core/autopilot.h"
#include "dse/annealing.h"
#include "dse/bayesopt.h"
#include "dse/evaluator.h"
#include "dse/genetic.h"
#include "dse/optimizer.h"
#include "dse/random_search.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dse = autopilot::dse;
namespace al = autopilot::airlearning;
namespace util = autopilot::util;

namespace
{

/** One shared Phase 1 database for every test here (cheap config). */
const al::PolicyDatabase &
sharedDatabase()
{
    static const al::PolicyDatabase db = [] {
        al::TrainerConfig config;
        config.validationEpisodes = 40;
        const al::Trainer trainer(config);
        al::PolicyDatabase built;
        trainer.trainAll(autopilot::nn::PolicySpace(),
                         al::ObstacleDensity::Dense, built);
        return built;
    }();
    return db;
}

std::vector<dse::Encoding>
distinctEncodings(std::size_t count, std::uint64_t seed)
{
    const dse::DesignSpace space;
    util::Rng rng(seed);
    std::vector<dse::Encoding> out;
    std::set<dse::Encoding> seen;
    while (out.size() < count) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            out.push_back(encoding);
    }
    return out;
}

} // namespace

// --------------------------------------------------------- thread pool ----

TEST(ThreadPool, SubmitReturnsFutureResults)
{
    util::ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
    auto doubled = pool.submit([] { return 21 * 2; });
    auto greeting = pool.submit([] { return std::string("hi"); });
    EXPECT_EQ(doubled.get(), 42);
    EXPECT_EQ(greeting.get(), "hi");
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    util::ThreadPool pool(2);
    auto failing =
        pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    util::ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> touched(n);
    pool.parallelFor(n, [&](std::size_t i) {
        touched[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForRethrowsFirstError)
{
    util::ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     64,
                     [](std::size_t i) {
                         if (i == 7)
                             throw std::runtime_error("bad iteration");
                     }),
                 std::runtime_error);
    // The pool must survive an erroring parallelFor.
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](std::size_t i) {
        sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // A pool task running its own parallelFor must not self-deadlock
    // even when the pool has a single worker.
    util::ThreadPool pool(1);
    std::atomic<int> total{0};
    auto outer = pool.submit([&] {
        pool.parallelFor(8, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    outer.get();
    EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, FreeFunctionRunsSeriallyWithoutPool)
{
    std::vector<std::size_t> order;
    util::parallel_for(nullptr, 5,
                       [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Latch, ReleasesAfterFullCountdown)
{
    util::Latch latch(2);
    std::atomic<bool> released{false};
    std::thread waiter([&] {
        latch.wait();
        released.store(true);
    });
    latch.countDown();
    EXPECT_FALSE(released.load());
    latch.countDown();
    waiter.join();
    EXPECT_TRUE(released.load());
}

// ----------------------------------------------------- concurrent cache ----

TEST(BatchEvaluator, FreshFlagsMarkFirstOccurrencesOnly)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    const auto points = distinctEncodings(3, 11);
    const std::vector<dse::Encoding> batch = {points[0], points[1],
                                              points[0], points[2],
                                              points[1]};
    const auto results = evaluator.evaluateBatch(batch);
    ASSERT_EQ(results.size(), 5u);
    EXPECT_TRUE(results[0].fresh);
    EXPECT_TRUE(results[1].fresh);
    EXPECT_FALSE(results[2].fresh);
    EXPECT_TRUE(results[3].fresh);
    EXPECT_FALSE(results[4].fresh);
    // Duplicates resolve to the same cached node.
    EXPECT_EQ(results[0].evaluation, results[2].evaluation);
    EXPECT_EQ(results[1].evaluation, results[4].evaluation);
    EXPECT_EQ(evaluator.evaluationCount(), 3u);

    const dse::CacheStats stats = evaluator.cacheStats();
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.requests(), 5u);

    // A later batch only pays for the genuinely new point.
    const auto next = evaluator.evaluateBatch(
        std::vector<dse::Encoding>{points[0], points[2]});
    EXPECT_FALSE(next[0].fresh);
    EXPECT_FALSE(next[1].fresh);
    EXPECT_EQ(evaluator.evaluationCount(), 3u);
}

TEST(BatchEvaluator, MatchesSerialEvaluateExactly)
{
    dse::DseEvaluator serial(sharedDatabase(),
                             al::ObstacleDensity::Dense);
    util::ThreadPool pool(4);
    dse::DseEvaluator parallel(sharedDatabase(),
                               al::ObstacleDensity::Dense);
    parallel.setThreadPool(&pool);

    const auto points = distinctEncodings(32, 23);
    const auto batch = parallel.evaluateBatch(points);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const dse::Evaluation &expected = serial.evaluate(points[i]);
        const dse::Evaluation &actual = *batch[i].evaluation;
        EXPECT_EQ(expected.objectives, actual.objectives);
        EXPECT_EQ(expected.latencyMs, actual.latencyMs);
        EXPECT_EQ(expected.socPowerW, actual.socPowerW);
        EXPECT_EQ(expected.fps, actual.fps);
    }
}

TEST(BatchEvaluator, AllEvaluationsReturnsFirstRequestOrder)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    util::ThreadPool pool(4);
    evaluator.setThreadPool(&pool);

    const auto points = distinctEncodings(10, 37);
    evaluator.evaluate(points[0]);
    evaluator.evaluateBatch(std::vector<dse::Encoding>{
        points[1], points[2], points[0], points[3]});
    evaluator.evaluate(points[4]);
    evaluator.evaluateBatch(std::vector<dse::Encoding>{
        points[5], points[4], points[6], points[7], points[8],
        points[9]});

    const std::vector<dse::Evaluation> all =
        evaluator.allEvaluations();
    ASSERT_EQ(all.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(all[i].encoding, points[i]) << "position " << i;
}

TEST(BatchEvaluator, ConcurrentHammerSimulatesEachPointOnce)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    util::ThreadPool pool(4);
    evaluator.setThreadPool(&pool);

    constexpr std::size_t distinct = 12;
    constexpr std::size_t callers = 8;
    constexpr std::size_t rounds = 16;
    const auto points = distinctEncodings(distinct, 51);

    // Every caller hammers the same distinct points, shuffled and
    // duplicated differently per round, racing both the pool workers
    // and each other on the per-key in-flight guards.
    std::vector<std::thread> threads;
    threads.reserve(callers);
    std::atomic<std::uint64_t> requested{0};
    for (std::size_t t = 0; t < callers; ++t) {
        threads.emplace_back([&, t] {
            util::Rng rng(0x7A3B + t);
            for (std::size_t round = 0; round < rounds; ++round) {
                std::vector<dse::Encoding> batch;
                batch.reserve(2 * distinct);
                for (std::size_t rep = 0; rep < 2; ++rep)
                    for (const dse::Encoding &point : points)
                        batch.push_back(point);
                rng.shuffle(batch);
                requested.fetch_add(batch.size());
                const auto results = evaluator.evaluateBatch(batch);
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    ASSERT_NE(results[i].evaluation, nullptr);
                    EXPECT_EQ(results[i].evaluation->encoding,
                              batch[i]);
                }
            }
        });
    }
    // While the hammer runs, the counters must stay reconciled at every
    // instant: evaluationCount() covers completed simulations only (and
    // so always matches allEvaluations()), while reservedCount() also
    // includes other threads' in-flight work.
    std::atomic<bool> done{false};
    std::thread monitor([&] {
        while (!done.load(std::memory_order_acquire)) {
            const std::size_t before = evaluator.evaluationCount();
            const std::size_t snapshot =
                evaluator.allEvaluations().size();
            const std::size_t after = evaluator.evaluationCount();
            EXPECT_LE(before, snapshot);
            EXPECT_LE(snapshot, after);
            EXPECT_LE(after, evaluator.reservedCount());
            EXPECT_LE(evaluator.reservedCount(), distinct);
            std::this_thread::yield();
        }
    });
    for (std::thread &thread : threads)
        thread.join();
    done.store(true, std::memory_order_release);
    monitor.join();

    // Each distinct point was simulated exactly once process-wide, and
    // the two progress counters reconcile now that the cache quiesced:
    // no reservation is left without a completed evaluation.
    EXPECT_EQ(evaluator.evaluationCount(), distinct);
    EXPECT_EQ(evaluator.reservedCount(), distinct);
    EXPECT_EQ(evaluator.allEvaluations().size(),
              evaluator.evaluationCount());
    const dse::CacheStats stats = evaluator.cacheStats();
    EXPECT_EQ(stats.misses, distinct);
    EXPECT_EQ(stats.requests(), requested.load());
    EXPECT_EQ(stats.hits + stats.misses, requested.load());

    // Values agree with an independent serial evaluator.
    dse::DseEvaluator reference(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    for (const dse::Encoding &point : points) {
        EXPECT_EQ(evaluator.evaluate(point).objectives,
                  reference.evaluate(point).objectives);
    }
}

// ------------------------------------- serial/parallel optimizer parity ----

namespace
{

std::unique_ptr<dse::Optimizer>
makeOptimizer(int kind)
{
    switch (kind) {
      case 0: return std::make_unique<dse::RandomSearch>();
      case 1: {
          // Batched BO: q-batch suggestions plus parallel screening.
          dse::BayesOpt::Settings settings;
          settings.initialSamples = 8;
          settings.candidatePool = 64;
          settings.batchSize = 4;
          return std::make_unique<dse::BayesOpt>(settings);
      }
      case 2: return std::make_unique<dse::GeneticAlgorithm>();
      case 3: {
          // Restart-heavy SA so the batch fan-out path actually runs.
          dse::SimulatedAnnealing::Settings settings;
          settings.initialTemperature = 5e-4;
          settings.coolingRate = 0.5;
          settings.restartFanout = 3;
          return std::make_unique<dse::SimulatedAnnealing>(settings);
      }
    }
    return nullptr;
}

} // namespace

class SerialParallelParity : public ::testing::TestWithParam<int>
{
};

TEST_P(SerialParallelParity, ByteIdenticalResultAcrossThreadCounts)
{
    dse::OptimizerConfig config;
    config.evaluationBudget = 40;
    config.seed = 0xC0FFEE;

    dse::DseEvaluator serial_eval(sharedDatabase(),
                                  al::ObstacleDensity::Dense);
    const dse::OptimizerResult serial =
        makeOptimizer(GetParam())->optimize(serial_eval, config);

    for (std::size_t threads : {2u, 4u}) {
        util::ThreadPool pool(threads);
        dse::DseEvaluator parallel_eval(sharedDatabase(),
                                        al::ObstacleDensity::Dense);
        parallel_eval.setThreadPool(&pool);
        const dse::OptimizerResult parallel =
            makeOptimizer(GetParam())->optimize(parallel_eval, config);

        ASSERT_EQ(serial.archive.size(), parallel.archive.size())
            << threads << " threads";
        for (std::size_t i = 0; i < serial.archive.size(); ++i) {
            EXPECT_EQ(serial.archive[i].encoding,
                      parallel.archive[i].encoding)
                << "archive position " << i;
            EXPECT_EQ(serial.archive[i].objectives,
                      parallel.archive[i].objectives)
                << "archive position " << i;
        }
        ASSERT_EQ(serial.hypervolumeHistory.size(),
                  parallel.hypervolumeHistory.size());
        for (std::size_t i = 0; i < serial.hypervolumeHistory.size();
             ++i) {
            EXPECT_EQ(serial.hypervolumeHistory[i],
                      parallel.hypervolumeHistory[i])
                << "history position " << i;
        }
        EXPECT_EQ(serial.frontIndices(), parallel.frontIndices());
    }
}

namespace
{

std::string
parityCaseName(const ::testing::TestParamInfo<int> &info)
{
    static const char *const names[] = {"Random", "BatchedBO", "Nsga2",
                                        "FanoutSA"};
    return names[info.param];
}

} // namespace

INSTANTIATE_TEST_SUITE_P(All, SerialParallelParity,
                         ::testing::Values(0, 1, 2, 3), parityCaseName);

// -------------------------------------------------- pipeline threading ----

TEST(AutoPilotThreads, PipelineIsByteIdenticalAcrossThreadCounts)
{
    autopilot::core::TaskSpec task;
    task.validationEpisodes = 30;
    task.dseBudget = 20;
    task.threads = 1;
    autopilot::core::TaskSpec task4 = task;
    task4.threads = 4;

    autopilot::core::AutoPilot serial(task);
    autopilot::core::AutoPilot threaded(task4);
    const auto run_serial =
        serial.designFor(autopilot::uav::zhangNano());
    const auto run_threaded =
        threaded.designFor(autopilot::uav::zhangNano());

    ASSERT_EQ(run_serial.dseResult.archive.size(),
              run_threaded.dseResult.archive.size());
    for (std::size_t i = 0; i < run_serial.dseResult.archive.size();
         ++i) {
        EXPECT_EQ(run_serial.dseResult.archive[i].encoding,
                  run_threaded.dseResult.archive[i].encoding);
        EXPECT_EQ(run_serial.dseResult.archive[i].objectives,
                  run_threaded.dseResult.archive[i].objectives);
    }
    ASSERT_EQ(run_serial.candidates.size(),
              run_threaded.candidates.size());
    for (std::size_t i = 0; i < run_serial.candidates.size(); ++i) {
        EXPECT_EQ(run_serial.candidates[i].eval.encoding,
                  run_threaded.candidates[i].eval.encoding);
        EXPECT_EQ(run_serial.candidates[i].mission.numMissions,
                  run_threaded.candidates[i].mission.numMissions);
    }
    EXPECT_EQ(run_serial.selected.eval.encoding,
              run_threaded.selected.eval.encoding);
    EXPECT_EQ(run_serial.selected.mission.numMissions,
              run_threaded.selected.mission.numMissions);
}

// ------------------------------------------------- budget bookkeeping ----

TEST(RecordEvaluations, CapsFreshPointsAtMaxNewPoints)
{
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense);
    const auto points = distinctEncodings(6, 91);
    dse::OptimizerConfig config;
    dse::OptimizerResult result;

    const int recorded = dse::recordEvaluations(
        evaluator, points, config, result, 4);
    EXPECT_EQ(recorded, 4);
    ASSERT_EQ(result.archive.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(result.archive[i].encoding, points[i]);
    EXPECT_EQ(result.hypervolumeHistory.size(), 4u);

    // The over-budget points are memoized but unrecorded; re-proposing
    // them records nothing new.
    dse::OptimizerResult second;
    const int again = dse::recordEvaluations(evaluator, points, config,
                                             second, 10);
    EXPECT_EQ(again, 0);
    EXPECT_TRUE(second.archive.empty());
    EXPECT_EQ(evaluator.evaluationCount(), 6u);
}


// ------------------------------------------- work-stealing pool races ----

TEST(ThreadPool, ShutdownIsIdempotentAndObservable)
{
    util::ThreadPool pool(2);
    EXPECT_FALSE(pool.stopped());
    auto before = pool.submit([] { return 7; });
    EXPECT_EQ(before.get(), 7);
    pool.shutdown();
    EXPECT_TRUE(pool.stopped());
    pool.shutdown(); // Second call must be a no-op, not a hang/crash.
    EXPECT_TRUE(pool.stopped());
}

TEST(ThreadPool, SubmitAfterShutdownReturnsFailedFutureAndNeverRuns)
{
    util::ThreadPool pool(2);
    pool.shutdown();

    std::atomic<bool> ran{false};
    auto rejected = pool.submit([&] {
        ran.store(true);
        return 1;
    });
    ASSERT_TRUE(rejected.valid())
        << "a rejected submit must still hand back a waitable future";
    EXPECT_THROW(rejected.get(), util::ThreadPoolStopped);
    EXPECT_FALSE(ran.load()) << "rejected tasks must not execute";
}

TEST(ThreadPool, SubmitShutdownRaceNeverLosesAcceptedTasks)
{
    // The documented ordering: a submit that returns a normal future
    // was accepted and WILL run during the drain; a submit racing the
    // stop mark gets a future that throws ThreadPoolStopped. Nothing
    // hangs, nothing is silently dropped, nothing throws at the call
    // site. Many small rounds maximize shutdown/submit interleavings.
    constexpr int kRounds = 25;
    constexpr int kSubmitters = 4;
    for (int round = 0; round < kRounds; ++round) {
        auto pool = std::make_unique<util::ThreadPool>(2);
        std::atomic<std::size_t> executed{0};
        std::atomic<std::size_t> accepted{0};
        std::atomic<std::size_t> rejectedCount{0};

        std::vector<std::thread> submitters;
        for (int s = 0; s < kSubmitters; ++s) {
            submitters.emplace_back([&] {
                for (;;) {
                    auto future = pool->submit([&executed] {
                        executed.fetch_add(1);
                        return 0;
                    });
                    // get() classifies the submit: a value means the
                    // task was accepted (and by now has run), the
                    // rejection exception means the pool had stopped.
                    try {
                        future.get();
                        accepted.fetch_add(1);
                    } catch (const util::ThreadPoolStopped &) {
                        rejectedCount.fetch_add(1);
                        return;
                    }
                }
            });
        }
        // Let the submitters build up steam, then yank the pool.
        std::this_thread::yield();
        pool->shutdown();
        for (std::thread &submitter : submitters)
            submitter.join();

        EXPECT_EQ(executed.load(), accepted.load())
            << "round " << round
            << ": every accepted task must run before shutdown returns";
        EXPECT_EQ(rejectedCount.load(),
                  static_cast<std::size_t>(kSubmitters))
            << "round " << round
            << ": each submitter must end on a clean rejection";
        pool.reset(); // Destructor after explicit shutdown: no-op join.
    }
}

TEST(ThreadPool, StealHeavyStressExecutesEveryTaskExactlyOnce)
{
    // External submissions round-robin across shards while the uneven
    // task bodies force idle workers to steal from loaded peers. Under
    // TSan this is the main data-race stress for the sharded deques.
    util::ThreadPool pool(4);
    constexpr std::size_t kTasks = 4000;
    std::atomic<std::size_t> executed{0};
    std::vector<std::future<std::size_t>> futures;
    futures.reserve(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit([i, &executed] {
            // Uneven busy-work: every 16th task is ~100x heavier, so
            // its shard backs up and the other workers must steal.
            std::size_t spin = (i % 16 == 0) ? 2500 : 25;
            volatile std::size_t acc = 0;
            for (std::size_t k = 0; k < spin; ++k)
                acc += k;
            executed.fetch_add(1);
            return i;
        }));
    }
    std::size_t checksum = 0;
    for (std::size_t i = 0; i < kTasks; ++i)
        checksum += futures[i].get() == i ? 1 : 0;
    EXPECT_EQ(checksum, kTasks);
    EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPool, ParallelForCompletesOnStoppedPool)
{
    // parallelFor's helpers are rejected after shutdown, but the caller
    // participates in the drain, so the loop still covers every index.
    util::ThreadPool pool(2);
    pool.shutdown();
    std::vector<int> hits(257, 0);
    pool.parallelFor(hits.size(), [&](std::size_t i) { hits[i]++; },
                     16);
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << i;
}
