/**
 * @file
 * Cross-module property tests: monotonicity and consistency invariants
 * that must hold across the whole modelling stack, swept with
 * parameterized fixtures.
 */

#include <gtest/gtest.h>

#include "nn/e2e_template.h"
#include "power/mass_model.h"
#include "power/npu_power.h"
#include "systolic/engine.h"
#include "uav/mission.h"
#include "uav/propulsion.h"
#include "uav/uav_spec.h"
#include "util/rng.h"

namespace nn = autopilot::nn;
namespace sys = autopilot::systolic;
namespace pw = autopilot::power;
namespace uav = autopilot::uav;

// ---------------------------------------------------- mission physics ----

/** Per-vehicle monotonicity sweeps. */
class MissionMonotonicity : public ::testing::TestWithParam<int>
{
  protected:
    uav::UavSpec
    vehicle() const
    {
        return uav::allUavs()[static_cast<std::size_t>(GetParam())];
    }
};

TEST_P(MissionMonotonicity, MissionsFallAsPayloadGrows)
{
    const uav::MissionModel model(vehicle());
    double prev = -1.0;
    for (double payload : {20.0, 30.0, 45.0, 65.0}) {
        const auto result = model.evaluate(payload, 1.0, 100.0, 60.0);
        if (!result.feasible)
            break; // Heavier payloads can only stay infeasible.
        if (prev >= 0.0) {
            EXPECT_LT(result.numMissions, prev)
                << vehicle().name << " payload " << payload;
        }
        prev = result.numMissions;
    }
}

TEST_P(MissionMonotonicity, MissionsFallAsComputePowerGrows)
{
    const uav::MissionModel model(vehicle());
    double prev = -1.0;
    for (double watts : {0.2, 1.0, 4.0, 10.0}) {
        const auto result = model.evaluate(25.0, watts, 100.0, 60.0);
        ASSERT_TRUE(result.feasible);
        if (prev >= 0.0) {
            EXPECT_LT(result.numMissions, prev);
        }
        prev = result.numMissions;
    }
}

TEST_P(MissionMonotonicity, MissionsRiseWithThroughputUpToKnee)
{
    const uav::MissionModel model(vehicle());
    const auto at_knee = model.evaluate(
        25.0, 1.0, model.evaluate(25.0, 1.0, 1e4, 60.0).kneeThroughputHz,
        60.0);
    double prev = -1.0;
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
        const auto result = model.evaluate(
            25.0, 1.0, at_knee.kneeThroughputHz * frac, 1e4);
        ASSERT_TRUE(result.feasible);
        if (prev >= 0.0) {
            EXPECT_GT(result.numMissions, prev);
        }
        prev = result.numMissions;
    }
}

TEST_P(MissionMonotonicity, FasterIsAlwaysMoreEfficientBelowCeiling)
{
    // The Eq. 4 premise: energy per meter falls with velocity across
    // the achievable range.
    const uav::UavSpec spec = vehicle();
    const uav::F1Model f1(spec, 25.0);
    const double ceiling = f1.velocityCeilingMps();
    double prev_epm = 1e18;
    for (double frac : {0.3, 0.5, 0.7, 0.9, 1.0}) {
        const double v = ceiling * frac;
        const double epm =
            uav::rotorPowerW(spec, spec.baseMassGrams + 25.0, v) / v;
        EXPECT_LT(epm, prev_epm) << spec.name << " v=" << v;
        prev_epm = epm;
    }
}

INSTANTIATE_TEST_SUITE_P(AllVehicles, MissionMonotonicity,
                         ::testing::Values(0, 1, 2));

// ----------------------------------------------------- compute models ----

TEST(ComputeProperties, WiderOperandsNeverFasterAndNeverCheaper)
{
    const nn::Model model = nn::buildE2EModel({5, 48});
    for (int size : {16, 64}) {
        sys::AcceleratorConfig int8;
        int8.peRows = int8.peCols = size;
        sys::AcceleratorConfig int16 = int8;
        int16.bytesPerElement = 2;

        const auto run8 = sys::AnalyticalEngine(int8).run(model);
        const auto run16 = sys::AnalyticalEngine(int16).run(model);
        EXPECT_GE(run16.totalCycles, run8.totalCycles) << size;
        EXPECT_GE(run16.traffic.totalDramBytes(),
                  run8.traffic.totalDramBytes())
            << size;
    }
}

TEST(ComputeProperties, NpuPowerMonotoneInClockForFixedWorkload)
{
    const nn::Model model = nn::buildE2EModel({5, 32});
    double prev = -1.0;
    for (double clock : {0.1, 0.2, 0.4, 0.8}) {
        sys::AcceleratorConfig config;
        config.clockGhz = clock;
        const auto run = sys::AnalyticalEngine(config).run(model);
        const double watts =
            pw::NpuPowerModel(config).averagePowerW(run);
        if (prev >= 0.0) {
            EXPECT_GT(watts, prev) << clock;
        }
        prev = watts;
    }
}

TEST(ComputeProperties, DeeperPoliciesNeverFasterOnSameHardware)
{
    sys::AcceleratorConfig config;
    const sys::AnalyticalEngine engine(config);
    std::int64_t prev = -1;
    for (int layers : {2, 4, 6, 8, 10}) {
        const auto run = engine.run(nn::buildE2EModel({layers, 48}));
        if (prev >= 0) {
            EXPECT_GE(run.totalCycles, prev) << layers;
        }
        prev = run.totalCycles;
    }
}

TEST(ComputeProperties, PayloadMonotoneInNpuPower)
{
    const pw::MassModel mass;
    double prev = -1.0;
    for (double watts : {0.1, 0.5, 1.0, 3.0, 8.0}) {
        const double payload = mass.computePayloadGrams(watts);
        EXPECT_GE(payload, prev);
        prev = payload;
    }
}

// -------------------------------------------------- end-to-end sanity ----

TEST(EndToEndProperties, KneeSelectionBeatsRandomHardwareOnAverage)
{
    // The F-1-guided sensor selection plus mission model must make
    // better-than-random use of any given accelerator: evaluating the
    // same design with the knee-matched sensor never does worse than
    // with the slower sensor.
    const uav::UavSpec nano = uav::zhangNano();
    const uav::MissionModel model(nano);
    autopilot::util::Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        const double fps = rng.uniform(10.0, 200.0);
        const double watts = rng.uniform(0.2, 6.0);
        const double payload = 20.0 + watts * 5.4;
        const int sensor = model.selectSensorFps(
            uav::F1Model(nano, payload).kneeThroughputHz());
        const auto matched =
            model.evaluate(payload, watts, fps, sensor);
        const auto slow30 = model.evaluate(payload, watts, fps, 30.0);
        EXPECT_GE(matched.numMissions + 1e-9, slow30.numMissions);
    }
}
