/**
 * @file
 * Tests for the F-1 bottleneck analyzer.
 */

#include <gtest/gtest.h>

#include "uav/bottleneck.h"
#include "uav/uav_spec.h"

namespace uav = autopilot::uav;

TEST(Bottleneck, SensorBoundWhenSensorSlowest)
{
    // Nano knee ~46 Hz; 30 FPS sensor with fast compute -> sensor-bound.
    const auto report =
        uav::analyzeBottleneck(uav::zhangNano(), 24.0, 200.0, 30.0);
    EXPECT_EQ(report.stage, uav::BottleneckStage::Sensor);
    EXPECT_DOUBLE_EQ(report.actionThroughputHz, 30.0);
    // Unbinding the sensor lifts velocity (compute 200 Hz > knee).
    EXPECT_GT(report.unboundedVelocityMps, report.safeVelocityMps);
    EXPECT_GT(report.velocityLossFraction(), 0.05);
}

TEST(Bottleneck, ComputeBoundWhenComputeSlowest)
{
    const auto report =
        uav::analyzeBottleneck(uav::zhangNano(), 24.0, 10.0, 60.0);
    EXPECT_EQ(report.stage, uav::BottleneckStage::Compute);
    EXPECT_DOUBLE_EQ(report.actionThroughputHz, 10.0);
    EXPECT_GT(report.velocityLossFraction(), 0.3);
}

TEST(Bottleneck, BodyDynamicsBoundPastKnee)
{
    const auto report =
        uav::analyzeBottleneck(uav::zhangNano(), 24.0, 200.0, 60.0);
    EXPECT_EQ(report.stage, uav::BottleneckStage::BodyDynamics);
    EXPECT_DOUBLE_EQ(report.safeVelocityMps,
                     report.velocityCeilingMps);
    // A massless compute payload would raise the ceiling.
    EXPECT_GT(report.unboundedVelocityMps, report.safeVelocityMps);
}

TEST(Bottleneck, HeavyPayloadShiftsBottleneckToDynamics)
{
    // With a heavy payload the ceiling (and the knee) drop so far that
    // even modest compute clears it.
    const auto light =
        uav::analyzeBottleneck(uav::zhangNano(), 24.0, 40.0, 60.0);
    const auto heavy =
        uav::analyzeBottleneck(uav::zhangNano(), 90.0, 40.0, 60.0);
    EXPECT_EQ(light.stage, uav::BottleneckStage::Compute);
    EXPECT_EQ(heavy.stage, uav::BottleneckStage::BodyDynamics);
    EXPECT_LT(heavy.velocityCeilingMps, light.velocityCeilingMps);
}

TEST(Bottleneck, StageNames)
{
    EXPECT_EQ(uav::bottleneckStageName(uav::BottleneckStage::Sensor),
              "sensor-bound");
    EXPECT_EQ(uav::bottleneckStageName(uav::BottleneckStage::Compute),
              "compute-bound");
    EXPECT_EQ(uav::bottleneckStageName(uav::BottleneckStage::Control),
              "control-bound");
    EXPECT_EQ(
        uav::bottleneckStageName(uav::BottleneckStage::BodyDynamics),
        "body-dynamics-bound");
}

TEST(Bottleneck, LossFractionZeroWhenBalanced)
{
    uav::BottleneckReport report;
    report.safeVelocityMps = 10.0;
    report.unboundedVelocityMps = 10.0;
    EXPECT_DOUBLE_EQ(report.velocityLossFraction(), 0.0);
    report.unboundedVelocityMps = 0.0;
    EXPECT_DOUBLE_EQ(report.velocityLossFraction(), 0.0);
}
