/**
 * @file
 * Tests for the Air Learning substitute: environment generation with
 * domain randomization, the policy capability surrogate, Monte-Carlo
 * rollouts, the trainer and the policy database.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "airlearning/database.h"
#include "airlearning/environment.h"
#include "airlearning/policy.h"
#include "airlearning/rollout.h"
#include "airlearning/trainer.h"

namespace al = autopilot::airlearning;
namespace nn = autopilot::nn;
using autopilot::util::Rng;

// -------------------------------------------------------- environment ----

TEST(Environment, DeterministicForSameSeed)
{
    const al::EnvironmentGenerator generator(
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Medium));
    Rng rng_a(7), rng_b(7);
    const al::Environment a = generator.generate(rng_a);
    const al::Environment b = generator.generate(rng_b);
    ASSERT_EQ(a.obstacles.size(), b.obstacles.size());
    for (std::size_t i = 0; i < a.obstacles.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.obstacles[i].x, b.obstacles[i].x);
        EXPECT_DOUBLE_EQ(a.obstacles[i].radius, b.obstacles[i].radius);
    }
}

TEST(Environment, EpisodesDiffer)
{
    const al::EnvironmentGenerator generator(
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Low));
    Rng rng(42);
    const al::Environment a = generator.generate(rng);
    const al::Environment b = generator.generate(rng);
    const bool same_goal = a.goal.x == b.goal.x && a.goal.y == b.goal.y;
    EXPECT_FALSE(same_goal);
}

class EnvironmentPerDensity
    : public ::testing::TestWithParam<al::ObstacleDensity>
{
};

TEST_P(EnvironmentPerDensity, ObstaclesInsideArenaAndClearEndpoints)
{
    const al::EnvironmentConfig config =
        al::EnvironmentConfig::forDensity(GetParam());
    const al::EnvironmentGenerator generator(config);
    Rng rng(123);
    for (int episode = 0; episode < 50; ++episode) {
        const al::Environment env = generator.generate(rng);
        EXPECT_GE(env.clearance(env.start.x, env.start.y), 1.0);
        EXPECT_GE(env.clearance(env.goal.x, env.goal.y), 1.0);
        for (const al::Obstacle &obstacle : env.obstacles) {
            EXPECT_GE(obstacle.x, 0.0);
            EXPECT_LE(obstacle.x, env.arenaSize);
            EXPECT_GE(obstacle.y, 0.0);
            EXPECT_LE(obstacle.y, env.arenaSize);
            EXPECT_GE(obstacle.radius, config.minRadius - 1e-9);
            EXPECT_LE(obstacle.radius, config.maxRadius + 1e-9);
        }
    }
}

TEST_P(EnvironmentPerDensity, MinimumGapBetweenObstacles)
{
    const al::EnvironmentGenerator generator(
        al::EnvironmentConfig::forDensity(GetParam()));
    Rng rng(321);
    for (int episode = 0; episode < 30; ++episode) {
        const al::Environment env = generator.generate(rng);
        for (std::size_t i = 0; i < env.obstacles.size(); ++i) {
            for (std::size_t j = i + 1; j < env.obstacles.size(); ++j) {
                const double dx = env.obstacles[i].x - env.obstacles[j].x;
                const double dy = env.obstacles[i].y - env.obstacles[j].y;
                const double gap = std::sqrt(dx * dx + dy * dy) -
                                   env.obstacles[i].radius -
                                   env.obstacles[j].radius;
                EXPECT_GE(gap, 1.5 - 1e-9);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Densities, EnvironmentPerDensity,
                         ::testing::Values(al::ObstacleDensity::Low,
                                           al::ObstacleDensity::Medium,
                                           al::ObstacleDensity::Dense));

TEST(Environment, DenseHasMoreObstaclesOnAverage)
{
    Rng rng_low(5), rng_dense(5);
    const al::EnvironmentGenerator low(
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Low));
    const al::EnvironmentGenerator dense(
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Dense));
    double low_sum = 0.0, dense_sum = 0.0;
    for (int i = 0; i < 60; ++i) {
        low_sum += low.generate(rng_low).obstacles.size();
        dense_sum += dense.generate(rng_dense).obstacles.size();
    }
    EXPECT_GT(dense_sum, low_sum * 1.4);
}

TEST(Environment, DensityNames)
{
    EXPECT_EQ(al::densityName(al::ObstacleDensity::Low), "low");
    EXPECT_EQ(al::densityName(al::ObstacleDensity::Medium), "medium");
    EXPECT_EQ(al::densityName(al::ObstacleDensity::Dense), "dense");
    EXPECT_EQ(al::allDensities().size(), 3u);
}

// ------------------------------------------------------------- policy ----

TEST(PolicyQuality, PaperArgmaxPerScenario)
{
    // Section V-A: 5L/32F best for low, 4L/48F for medium, 7L/48F for
    // dense obstacle scenarios.
    const nn::PolicyHyperParams low =
        al::bestHyperParams(al::ObstacleDensity::Low);
    EXPECT_EQ(low.numConvLayers, 5);
    EXPECT_EQ(low.numFilters, 32);
    const nn::PolicyHyperParams medium =
        al::bestHyperParams(al::ObstacleDensity::Medium);
    EXPECT_EQ(medium.numConvLayers, 4);
    EXPECT_EQ(medium.numFilters, 48);
    const nn::PolicyHyperParams dense =
        al::bestHyperParams(al::ObstacleDensity::Dense);
    EXPECT_EQ(dense.numConvLayers, 7);
    EXPECT_EQ(dense.numFilters, 48);
}

TEST(PolicyQuality, HarderTasksHaveLowerCeilings)
{
    const double low = al::policyQuality(
        al::bestHyperParams(al::ObstacleDensity::Low),
        al::ObstacleDensity::Low);
    const double medium = al::policyQuality(
        al::bestHyperParams(al::ObstacleDensity::Medium),
        al::ObstacleDensity::Medium);
    const double dense = al::policyQuality(
        al::bestHyperParams(al::ObstacleDensity::Dense),
        al::ObstacleDensity::Dense);
    EXPECT_GT(low, medium);
    EXPECT_GT(medium, dense);
}

TEST(PolicyQuality, TrainingJitterIsSmallAndDeterministic)
{
    const nn::PolicyHyperParams params{5, 32};
    const double base =
        al::policyQuality(params, al::ObstacleDensity::Low);
    const double a =
        al::trainedPolicyQuality(params, al::ObstacleDensity::Low, 1);
    const double b =
        al::trainedPolicyQuality(params, al::ObstacleDensity::Low, 1);
    const double c =
        al::trainedPolicyQuality(params, al::ObstacleDensity::Low, 2);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NEAR(a, base, 0.08);
}

TEST(PolicyCapability, MonotoneInQuality)
{
    const auto lo = al::PolicyCapability::fromQuality(0.2);
    const auto hi = al::PolicyCapability::fromQuality(0.9);
    EXPECT_GT(hi.perceptionRangeM, lo.perceptionRangeM);
    EXPECT_GT(hi.detectionProb, lo.detectionProb);
    EXPECT_LT(hi.headingNoiseRad, lo.headingNoiseRad);
}

TEST(PolicyCapabilityDeath, RejectsOutOfRangeQuality)
{
    EXPECT_EXIT(al::PolicyCapability::fromQuality(1.5),
                ::testing::ExitedWithCode(1), "quality");
}

// ------------------------------------------------------------ rollout ----

TEST(Rollout, EmptyEnvironmentAlwaysSucceeds)
{
    al::Environment env;
    env.arenaSize = 30.0;
    env.start = {2.0, 2.0};
    env.goal = {20.0, 20.0};
    const auto capability = al::PolicyCapability::fromQuality(0.5);
    Rng rng(1);
    const auto result =
        al::runEpisode(env, capability, al::RolloutConfig(), rng);
    EXPECT_EQ(result.outcome, al::EpisodeOutcome::Success);
    EXPECT_GT(result.pathLengthM, 20.0); // At least the straight line.
}

TEST(Rollout, DeterministicEvaluation)
{
    const auto config =
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Medium);
    const auto capability = al::PolicyCapability::fromQuality(0.6);
    const auto a = al::evaluatePolicy(config, capability, 100, 42);
    const auto b = al::evaluatePolicy(config, capability, 100, 42);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.collisions, b.collisions);
    EXPECT_DOUBLE_EQ(a.meanPathLengthM, b.meanPathLengthM);
}

TEST(Rollout, OutcomeCountsAreConsistent)
{
    const auto config =
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Dense);
    const auto capability = al::PolicyCapability::fromQuality(0.5);
    const auto result = al::evaluatePolicy(config, capability, 200, 9);
    EXPECT_EQ(result.successes + result.collisions + result.timeouts,
              result.episodes);
    EXPECT_GE(result.successRate(), 0.0);
    EXPECT_LE(result.successRate(), 1.0);
}

class RolloutMonotonicity
    : public ::testing::TestWithParam<al::ObstacleDensity>
{
};

TEST_P(RolloutMonotonicity, SuccessGrowsWithQuality)
{
    const auto config = al::EnvironmentConfig::forDensity(GetParam());
    double prev = -1.0;
    for (double q : {0.30, 0.55, 0.80}) {
        const auto capability = al::PolicyCapability::fromQuality(q);
        const auto result =
            al::evaluatePolicy(config, capability, 400, 77);
        EXPECT_GT(result.successRate(), prev)
            << "quality " << q << " on " << al::densityName(GetParam());
        prev = result.successRate();
    }
}

TEST_P(RolloutMonotonicity, SuccessBandMatchesPaper)
{
    // Fig. 2b reports a 60-91% success band for trained policies; the
    // ideal policy per scenario should land in (or near) that band.
    const auto best = al::bestHyperParams(GetParam());
    const double quality = al::policyQuality(best, GetParam());
    const auto capability = al::PolicyCapability::fromQuality(quality);
    const auto result = al::evaluatePolicy(
        al::EnvironmentConfig::forDensity(GetParam()), capability, 400,
        1234);
    EXPECT_GT(result.successRate(), 0.70);
    EXPECT_LE(result.successRate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Densities, RolloutMonotonicity,
                         ::testing::Values(al::ObstacleDensity::Low,
                                           al::ObstacleDensity::Medium,
                                           al::ObstacleDensity::Dense));

TEST(Rollout, DenseHarderThanLow)
{
    const auto capability = al::PolicyCapability::fromQuality(0.6);
    const auto low = al::evaluatePolicy(
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Low),
        capability, 400, 5);
    const auto dense = al::evaluatePolicy(
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Dense),
        capability, 400, 5);
    EXPECT_GT(low.successRate(), dense.successRate());
}

// ------------------------------------------------- trainer + database ----

TEST(Trainer, RecordIsComplete)
{
    al::TrainerConfig config;
    config.validationEpisodes = 60;
    const al::Trainer trainer(config);
    const al::PolicyRecord record =
        trainer.trainOne({7, 48}, al::ObstacleDensity::Dense);
    EXPECT_EQ(record.params.numConvLayers, 7);
    EXPECT_EQ(record.params.numFilters, 48);
    EXPECT_GT(record.successRate, 0.0);
    EXPECT_LE(record.successRate, 1.0);
    EXPECT_GT(record.modelParams, 1'000'000);
    EXPECT_GT(record.modelMacs, 100'000'000);
    EXPECT_EQ(record.policyId, "e2e_l7_f48_dense");
}

TEST(Trainer, TrainAllFillsDatabase)
{
    al::TrainerConfig config;
    config.validationEpisodes = 30;
    const al::Trainer trainer(config);
    al::PolicyDatabase db;
    const int added =
        trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Low, db);
    EXPECT_EQ(added, 27);
    EXPECT_EQ(db.size(), 27u);
    EXPECT_TRUE(db.best(al::ObstacleDensity::Low).has_value());
}

TEST(Trainer, Deterministic)
{
    al::TrainerConfig config;
    config.validationEpisodes = 50;
    const al::Trainer trainer(config);
    const auto a = trainer.trainOne({5, 32}, al::ObstacleDensity::Low);
    const auto b = trainer.trainOne({5, 32}, al::ObstacleDensity::Low);
    EXPECT_DOUBLE_EQ(a.successRate, b.successRate);
}

TEST(Trainer, BestOfSeedsNeverWorseThanSingle)
{
    al::TrainerConfig config;
    config.validationEpisodes = 80;
    const al::Trainer trainer(config);
    const nn::PolicyHyperParams params{6, 48};
    const auto single =
        trainer.trainBestOf(params, al::ObstacleDensity::Dense, 1);
    const auto best_of_four =
        trainer.trainBestOf(params, al::ObstacleDensity::Dense, 4);
    EXPECT_GE(best_of_four.successRate, single.successRate);
}

TEST(Trainer, BestOfOneMatchesTrainOne)
{
    al::TrainerConfig config;
    config.validationEpisodes = 50;
    const al::Trainer trainer(config);
    const nn::PolicyHyperParams params{5, 32};
    const auto one = trainer.trainOne(params, al::ObstacleDensity::Low);
    const auto best =
        trainer.trainBestOf(params, al::ObstacleDensity::Low, 1);
    EXPECT_DOUBLE_EQ(one.successRate, best.successRate);
}

TEST(Database, UpsertOverwrites)
{
    al::PolicyDatabase db;
    al::PolicyRecord record;
    record.params = {5, 32};
    record.density = al::ObstacleDensity::Low;
    record.successRate = 0.5;
    db.upsert(record);
    record.successRate = 0.9;
    db.upsert(record);
    EXPECT_EQ(db.size(), 1u);
    EXPECT_DOUBLE_EQ(
        db.find({5, 32}, al::ObstacleDensity::Low)->successRate, 0.9);
}

TEST(Database, QueriesFilterByDensityAndRate)
{
    al::PolicyDatabase db;
    for (int layers : {2, 5, 8}) {
        al::PolicyRecord record;
        record.params = {layers, 32};
        record.density = al::ObstacleDensity::Dense;
        record.successRate = layers / 10.0;
        db.upsert(record);
    }
    EXPECT_EQ(db.forDensity(al::ObstacleDensity::Dense).size(), 3u);
    EXPECT_EQ(db.forDensity(al::ObstacleDensity::Low).size(), 0u);
    EXPECT_EQ(
        db.meetingSuccessRate(al::ObstacleDensity::Dense, 0.45).size(),
        2u);
    EXPECT_EQ(db.best(al::ObstacleDensity::Dense)->params.numConvLayers,
              8);
    EXPECT_FALSE(db.find({3, 32}, al::ObstacleDensity::Dense).has_value());
}
