/**
 * @file
 * Quantized-inference suite: the precision axis of the Phase 2 design
 * space and the cost-accounting bugfixes that make it honest.
 *
 *  - DesignSpace: the 8th (precision) dimension defaults to a single
 *    int8 choice; neighbor() never proposes a self-move through a
 *    size-1 dimension (the annealer-budget bug); encode()/contains()
 *    reject operand widths outside the configured choice set.
 *  - Power: PeModel scales MAC energy with the squared element width
 *    (exactly 1.0 at int8 - the legacy numbers are reproduced bit for
 *    bit), and every cost path the element width touches (DRAM bytes,
 *    SRAM energy, MAC energy, fold occupancy) responds to it.
 *  - Air Learning surrogate: the quantization penalty is recovered
 *    monotonically by wider operands and int8 returns the Phase 1
 *    success rate verbatim.
 *  - QuantizedBackend: registered in the BackendRegistry, numerically
 *    identical to the analytical stack, batch path bit-identical to
 *    the scalar path at every precision.
 *  - Fingerprint/journal: the default precision set contributes
 *    nothing to the task fingerprint, and a pre-precision (7-dim)
 *    journal resumes into a default-precision run byte-identically at
 *    1/2/4 worker threads.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "airlearning/quantization.h"
#include "airlearning/trainer.h"
#include "core/autopilot.h"
#include "dse/eval_backend.h"
#include "dse/evaluator.h"
#include "io/journal.h"
#include "io/persistence.h"
#include "nn/e2e_template.h"
#include "power/npu_power.h"
#include "power/pe_model.h"
#include "systolic/engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace al = autopilot::airlearning;
namespace core = autopilot::core;
namespace dse = autopilot::dse;
namespace io = autopilot::io;
namespace nn = autopilot::nn;
namespace pw = autopilot::power;
namespace sys = autopilot::systolic;
namespace util = autopilot::util;
namespace fs = std::filesystem;

namespace
{

const al::PolicyDatabase &
sharedDatabase()
{
    static const al::PolicyDatabase db = [] {
        al::TrainerConfig config;
        config.validationEpisodes = 40;
        const al::Trainer trainer(config);
        al::PolicyDatabase built;
        trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Dense,
                         built);
        return built;
    }();
    return db;
}

dse::BackendContext
sharedContext()
{
    return {&sharedDatabase(), al::ObstacleDensity::Dense, {}};
}

std::string
fileBytes(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

// -------------------------------------------------- design space ----

TEST(QuantizedSpace, DefaultSpacePinsPrecisionToInt8)
{
    const dse::DesignSpace space;
    EXPECT_EQ(dse::designDims, 8u);
    EXPECT_EQ(space.dimensionSizes()[dse::precisionDim], 1);
    EXPECT_FALSE(space.precisionAxisEnabled());
    EXPECT_EQ(space.precisionChoices(), std::vector<int>({1}));
}

TEST(QuantizedSpace, WidenedAxisMultipliesCardinality)
{
    const dse::DesignSpace pinned;
    const dse::DesignSpace widened({1, 2, 4});
    EXPECT_TRUE(widened.precisionAxisEnabled());
    EXPECT_EQ(widened.cardinality(), 3 * pinned.cardinality());
}

TEST(QuantizedSpace, DecodeEncodeRoundTripsEveryPrecision)
{
    const dse::DesignSpace space({1, 2, 4});
    util::Rng rng(0x11);
    for (int i = 0; i < 100; ++i) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        const dse::DesignPoint point = space.decode(encoding);
        EXPECT_EQ(point.accel.bytesPerElement,
                  space.precisionChoices()[encoding[dse::precisionDim]]);
        EXPECT_EQ(space.encode(point), encoding);
    }
}

TEST(QuantizedSpaceDeath, EncodeRejectsForeignPrecision)
{
    const dse::DesignSpace space; // int8 only.
    dse::DesignPoint point = space.decode(dse::Encoding{});
    point.accel.bytesPerElement = 2;
    EXPECT_DEATH(space.encode(point), "bytesPerElement");
}

TEST(QuantizedSpaceDeath, ConstructorRejectsBadPrecisionLists)
{
    EXPECT_DEATH(dse::DesignSpace(std::vector<int>{}), "empty");
    EXPECT_DEATH(dse::DesignSpace({3}), "unsupported precision");
    EXPECT_DEATH(dse::DesignSpace({2, 1}), "ascending");
}

TEST(QuantizedSpace, HardwareSpaceContainsChecksPrecision)
{
    sys::HardwareSpace hw; // bytesPerElementChoices = {1}.
    sys::AcceleratorConfig config;
    config.bytesPerElement = 1;
    EXPECT_TRUE(hw.contains(config));
    config.bytesPerElement = 2;
    EXPECT_FALSE(hw.contains(config));
    hw.bytesPerElementChoices = {1, 2, 4};
    EXPECT_TRUE(hw.contains(config));
}

TEST(QuantizedSpace, PrecisionNamesRoundTrip)
{
    for (const int width : {1, 2, 4}) {
        int restored = 0;
        EXPECT_TRUE(sys::precisionFromName(sys::precisionName(width),
                                           restored));
        EXPECT_EQ(restored, width);
    }
    int unused = 0;
    EXPECT_FALSE(sys::precisionFromName("int4", unused));

    std::vector<int> widths;
    std::string error;
    EXPECT_TRUE(sys::parsePrecisionList("fp32, int8", widths, error));
    EXPECT_EQ(widths, std::vector<int>({1, 4})); // Sorted ascending.
    EXPECT_EQ(sys::formatPrecisionList(widths), "int8+fp32");
    EXPECT_FALSE(sys::parsePrecisionList("int8,int8", widths, error));
    EXPECT_FALSE(sys::parsePrecisionList("", widths, error));
    EXPECT_FALSE(sys::parsePrecisionList("int9", widths, error));
}

// The satellite bugfix: neighbor() used to sample ANY dimension and
// step it, so a size-1 dimension produced a self-move - a wasted
// annealer proposal. Size-1 dimensions must now never be picked, and
// the proposal must always differ from the input.
TEST(QuantizedSpace, NeighborNeverSelfMovesThroughSizeOneDims)
{
    const dse::DesignSpace space; // Precision dim has exactly 1 choice.
    util::Rng rng(0x5EED);
    for (int i = 0; i < 500; ++i) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        const dse::Encoding next = space.neighbor(encoding, rng);
        EXPECT_NE(next, encoding); // Never a self-move.
        EXPECT_EQ(next[dse::precisionDim], 0); // Pinned dim untouched.
        int changed = 0;
        for (std::size_t d = 0; d < dse::designDims; ++d)
            changed += next[d] != encoding[d];
        EXPECT_EQ(changed, 1); // Exactly one dimension stepped.
    }
}

TEST(QuantizedSpace, NeighborReachesTheWidenedPrecisionDim)
{
    const dse::DesignSpace space({1, 2, 4});
    util::Rng rng(0x5EED);
    int precision_moves = 0;
    for (int i = 0; i < 500; ++i) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        const dse::Encoding next = space.neighbor(encoding, rng);
        EXPECT_NE(next, encoding);
        precision_moves +=
            next[dse::precisionDim] != encoding[dse::precisionDim];
    }
    EXPECT_GT(precision_moves, 0); // ~1/8 of proposals on average.
}

TEST(QuantizedSpace, SizeOneDimsContributeZeroGpFeature)
{
    const dse::DesignSpace space;
    util::Rng rng(0xF0);
    const auto features = space.features(space.randomEncoding(rng));
    ASSERT_EQ(features.size(), dse::designDims);
    EXPECT_EQ(features[dse::precisionDim], 0.0);
}

// --------------------------------------------------------- power ----

TEST(QuantizedPower, PrecisionEnergyScaleIsExactlySquaredWidth)
{
    EXPECT_EQ(pw::PeModel::precisionEnergyScale(1), 1.0);
    EXPECT_EQ(pw::PeModel::precisionEnergyScale(2), 4.0);
    EXPECT_EQ(pw::PeModel::precisionEnergyScale(4), 16.0);
}

TEST(QuantizedPower, Int8MacEnergyIsBitIdenticalToLegacy)
{
    const pw::PeModel model;
    // The pre-precision macEnergyPj() took no width argument; the
    // int8 path must reproduce it exactly (x1.0, not merely close).
    EXPECT_EQ(model.macEnergyPj(1), model.macEnergyPj());
    EXPECT_EQ(model.macEnergyPj(2), 4.0 * model.macEnergyPj());
    EXPECT_EQ(model.macEnergyPj(4), 16.0 * model.macEnergyPj());
}

// The cross-layer property the cost-accounting bugfix exists for:
// every cost path the element width touches must respond to it. Before
// the fix, bytesPerElement scaled DRAM traffic but the MAC and SRAM
// energies silently kept their int8 values.
TEST(QuantizedPower, EveryCostPathRespondsToPrecision)
{
    nn::PolicyHyperParams params;
    params.numConvLayers = 4;
    params.numFilters = 32;
    const nn::Model model = nn::buildE2EModel(params);

    util::Rng rng(0xC057);
    const sys::HardwareSpace hw;
    for (int trial = 0; trial < 10; ++trial) {
        sys::AcceleratorConfig config;
        config.peRows = hw.peRowChoices[rng.index(hw.peRowChoices.size())];
        config.peCols = hw.peColChoices[rng.index(hw.peColChoices.size())];
        config.ifmapSramKb =
            hw.sramKbChoices[rng.index(hw.sramKbChoices.size())];
        config.filterSramKb =
            hw.sramKbChoices[rng.index(hw.sramKbChoices.size())];
        config.ofmapSramKb =
            hw.sramKbChoices[rng.index(hw.sramKbChoices.size())];

        double prev_dram = -1.0, prev_mac = -1.0, prev_sram = -1.0;
        std::int64_t prev_cycles = -1;
        for (const int width : {1, 2, 4}) {
            config.bytesPerElement = width;
            const sys::AnalyticalEngine engine(config);
            const sys::RunResult run = engine.run(model);
            const pw::NpuPowerModel power(config);
            const pw::NpuPowerBreakdown breakdown =
                power.estimate(run);
            const double seconds = run.runtimeSeconds(config.clockGhz);
            const double mac_j = breakdown.peDynamicW * seconds;
            const double sram_j = breakdown.sramDynamicW * seconds;
            const double dram_bytes =
                double(run.traffic.totalDramBytes());

            EXPECT_GT(dram_bytes, prev_dram) << config.name();
            EXPECT_GT(mac_j, prev_mac) << config.name();
            EXPECT_GT(sram_j, prev_sram) << config.name();
            // Fold occupancy: wider elements shrink the per-tile
            // element budget, so the schedule can only get longer.
            EXPECT_GE(run.totalCycles, prev_cycles) << config.name();

            prev_dram = dram_bytes;
            prev_mac = mac_j;
            prev_sram = sram_j;
            prev_cycles = run.totalCycles;
        }
    }
}

// ----------------------------------------------------- surrogate ----

TEST(QuantizedSurrogate, Int8ReturnsPhase1SuccessVerbatim)
{
    nn::PolicyHyperParams params;
    params.numConvLayers = 3;
    params.numFilters = 24;
    const double base = 0.7351234567891234;
    EXPECT_EQ(al::quantizedSuccessRate(base, params, 1), base);
}

TEST(QuantizedSurrogate, WiderOperandsRecoverThePenaltyMonotonically)
{
    nn::PolicyHyperParams params;
    params.numConvLayers = 4;
    params.numFilters = 32;
    const double base = 0.6;
    const double fp16 = al::quantizedSuccessRate(base, params, 2);
    const double fp32 = al::quantizedSuccessRate(base, params, 4);
    EXPECT_GT(fp16, base);
    EXPECT_GT(fp32, fp16);
    EXPECT_NEAR(fp32 - base, al::quantizationPenalty(params), 1e-12);
    EXPECT_NEAR(fp16 - base, 0.75 * al::quantizationPenalty(params),
                1e-12);
}

TEST(QuantizedSurrogate, SuccessRateClampsAtOne)
{
    nn::PolicyHyperParams params;
    params.numConvLayers = 2;
    params.numFilters = 16;
    EXPECT_LE(al::quantizedSuccessRate(0.999, params, 4), 1.0);
    EXPECT_EQ(al::quantizedSuccessRate(1.0, params, 4), 1.0);
}

TEST(QuantizedSurrogate, PenaltyShrinksWithModelCapacity)
{
    nn::PolicyHyperParams small;
    small.numConvLayers = 2;
    small.numFilters = 16;
    nn::PolicyHyperParams large;
    large.numConvLayers = 10;
    large.numFilters = 64;
    EXPECT_GT(al::quantizationPenalty(small),
              al::quantizationPenalty(large));
}

// ------------------------------------------------------- backend ----

TEST(QuantizedBackend, RegisteredInTheBackendRegistry)
{
    auto &registry = dse::BackendRegistry::instance();
    EXPECT_TRUE(registry.knows("quantized"));
    auto backend = registry.create("quantized", sharedContext());
    EXPECT_EQ(backend->name(), "quantized");
    EXPECT_EQ(backend->fidelity(), dse::Fidelity::Analytical);
}

TEST(QuantizedBackend, NumbersMatchAnalyticalBitForBit)
{
    dse::AnalyticalBackend analytical(sharedContext());
    dse::QuantizedBackend quantized(sharedContext());
    const dse::DesignSpace space({1, 2, 4});
    util::Rng rng(0xAB);
    for (int i = 0; i < 30; ++i) {
        const dse::DesignPoint point =
            space.decode(space.randomEncoding(rng));
        const dse::Evaluation a = analytical.evaluate(point);
        const dse::Evaluation q = quantized.evaluate(point);
        EXPECT_EQ(a.successRate, q.successRate);
        EXPECT_EQ(a.npuPowerW, q.npuPowerW);
        EXPECT_EQ(a.socPowerW, q.socPowerW);
        EXPECT_EQ(a.latencyMs, q.latencyMs);
        EXPECT_EQ(a.fps, q.fps);
        EXPECT_EQ(a.objectives, q.objectives);
    }
}

TEST(QuantizedBackend, BatchPathBitIdenticalToScalarAtEveryPrecision)
{
    dse::QuantizedBackend backend(sharedContext());
    const dse::DesignSpace space({1, 2, 4});
    util::Rng rng(0xBA7C);
    std::vector<dse::DesignPoint> points;
    bool saw_wide = false;
    while (points.size() < 48) {
        const dse::DesignPoint point =
            space.decode(space.randomEncoding(rng));
        saw_wide = saw_wide || point.accel.bytesPerElement > 1;
        points.push_back(point);
    }
    ASSERT_TRUE(saw_wide); // The batch must exercise fp16/fp32 rows.

    std::vector<dse::Evaluation> batched(points.size());
    util::ThreadPool pool(4);
    backend.evaluateBatch(points, &pool,
                          [&](std::size_t i, dse::Evaluation &&eval) {
                              batched[i] = std::move(eval);
                          });
    for (std::size_t i = 0; i < points.size(); ++i) {
        const dse::Evaluation scalar = backend.evaluate(points[i]);
        EXPECT_EQ(scalar.successRate, batched[i].successRate) << i;
        EXPECT_EQ(scalar.npuPowerW, batched[i].npuPowerW) << i;
        EXPECT_EQ(scalar.socPowerW, batched[i].socPowerW) << i;
        EXPECT_EQ(scalar.latencyMs, batched[i].latencyMs) << i;
        EXPECT_EQ(scalar.fps, batched[i].fps) << i;
        EXPECT_EQ(scalar.objectives, batched[i].objectives) << i;
        EXPECT_EQ(batched[i].backend, "quantized");
    }
}

TEST(QuantizedBackend, WiderPrecisionRaisesSuccessAndEnergy)
{
    dse::QuantizedBackend backend(sharedContext());
    const dse::DesignSpace space({1, 2, 4});
    dse::Encoding encoding{};
    encoding[0] = 1;
    encoding[1] = 1;
    double prev_success = -1.0, prev_energy = -1.0;
    for (int idx = 0; idx < 3; ++idx) {
        encoding[dse::precisionDim] = idx;
        const dse::Evaluation eval =
            backend.evaluate(space.decode(encoding));
        EXPECT_GE(eval.successRate, prev_success);
        EXPECT_GT(eval.npuPowerW * eval.latencyMs, prev_energy);
        prev_success = eval.successRate;
        prev_energy = eval.npuPowerW * eval.latencyMs;
    }
}

// ----------------------------------------------------- evaluator ----

TEST(QuantizedEvaluator, StampsPrecisionLabelsOnlyWhenAxisEnabled)
{
    dse::DseEvaluator pinned(sharedDatabase(),
                             al::ObstacleDensity::Dense, "quantized");
    const dse::Evaluation &legacy =
        pinned.evaluate(dse::Encoding{1, 1, 1, 1, 1, 1, 1, 0});
    EXPECT_EQ(legacy.precision, "-");

    dse::DseEvaluator widened(sharedDatabase(),
                              al::ObstacleDensity::Dense, "quantized",
                              {}, {}, {1, 2, 4});
    const char *expected[] = {"int8", "fp16", "fp32"};
    for (int idx = 0; idx < 3; ++idx) {
        const dse::Evaluation &eval = widened.evaluate(
            dse::Encoding{1, 1, 1, 1, 1, 1, 1, idx});
        EXPECT_EQ(eval.precision, expected[idx]);
        EXPECT_EQ(eval.point.accel.bytesPerElement,
                  widened.space().precisionChoices()[idx]);
    }
}

// --------------------------------------------------- fingerprint ----

TEST(QuantizedFingerprint, DefaultPrecisionSetLeavesFingerprintAlone)
{
    core::TaskSpec legacy;
    core::TaskSpec explicit_default;
    explicit_default.precisions = {1};
    EXPECT_EQ(core::taskFingerprint(legacy),
              core::taskFingerprint(explicit_default));

    core::TaskSpec widened;
    widened.precisions = {1, 2, 4};
    EXPECT_NE(core::taskFingerprint(legacy),
              core::taskFingerprint(widened));

    core::TaskSpec fp16_only;
    fp16_only.precisions = {1, 2};
    EXPECT_NE(core::taskFingerprint(widened),
              core::taskFingerprint(fp16_only));
}

// ------------------------------------------------------- journal ----

// The resume-identity satellite: a pre-precision journal (legacy
// 17-column layout, written before the precision axis existed) must
// replay into a default-precision evaluator and produce byte-identical
// journal bytes at 1, 2 and 4 worker threads.
TEST(QuantizedJournal, LegacyJournalResumesByteIdenticallyAcrossThreads)
{
    const fs::path dir =
        fs::temp_directory_path() / "autopilot_quantized_journal";
    fs::remove_all(dir);
    fs::create_directories(dir);

    util::Rng rng(0x10AD);
    const dse::DesignSpace space;
    std::vector<dse::Encoding> encodings;
    std::set<dse::Encoding> seen;
    while (encodings.size() < 24) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            encodings.push_back(encoding);
    }

    // Reference run: no journal, single thread. Its archive rows are
    // what every resumed variant must reproduce.
    std::string golden;
    {
        dse::DseEvaluator evaluator(sharedDatabase(),
                                    al::ObstacleDensity::Dense);
        evaluator.evaluateBatch(encodings);
        std::stringstream buffer;
        io::writeDseArchive(evaluator.allEvaluations(), buffer);
        golden = buffer.str();
    }

    // A "pre-precision" journal: the default layout writer emits
    // exactly the legacy 17-column rows (no precision column), so a
    // journal written today with the default precision set IS the
    // legacy file format.
    const fs::path legacyJournal = dir / "journal.csv";
    {
        dse::DseEvaluator evaluator(sharedDatabase(),
                                    al::ObstacleDensity::Dense);
        io::EvalJournalWriter writer(legacyJournal.string(), 0xABCDu);
        evaluator.setJournalSink(
            [&](std::span<const dse::Evaluation> batch) {
                writer.append(batch);
            });
        evaluator.evaluateBatch(
            std::span<const dse::Encoding>(encodings.data(), 12));
    }
    const std::string legacyBytes = fileBytes(legacyJournal);
    EXPECT_EQ(legacyBytes.find("precision"), std::string::npos);

    // Resume from the legacy prefix at several thread counts; the
    // rewritten journal must carry the replayed rows byte-identically
    // and the final archive must equal the uninterrupted single-thread
    // run.
    for (const int threads : {1, 2, 4}) {
        const io::JournalReplay replay =
            io::readEvalJournal(legacyJournal.string());
        ASSERT_TRUE(replay.found);
        EXPECT_FALSE(replay.truncated);
        ASSERT_EQ(replay.entries.size(), 12u);

        const fs::path resumed =
            dir / ("resumed_" + std::to_string(threads) + ".csv");
        dse::DseEvaluator evaluator(sharedDatabase(),
                                    al::ObstacleDensity::Dense);
        util::ThreadPool pool(threads);
        evaluator.setThreadPool(&pool);
        evaluator.preload(replay.entries);
        io::EvalJournalWriter writer(resumed.string(), 0xABCDu,
                                     replay.entries);
        evaluator.setJournalSink(
            [&](std::span<const dse::Evaluation> batch) {
                writer.append(batch);
            });
        evaluator.evaluateBatch(encodings);

        // Replayed prefix rewritten byte-identically...
        EXPECT_EQ(fileBytes(resumed).substr(0, legacyBytes.size()),
                  legacyBytes)
            << "threads=" << threads;
        // ...and the completed archive matches the uninterrupted run.
        std::stringstream buffer;
        io::writeDseArchive(evaluator.allEvaluations(), buffer);
        EXPECT_EQ(buffer.str(), golden) << "threads=" << threads;
    }
    fs::remove_all(dir);
}

TEST(QuantizedJournal, PrecisionJournalRoundTripsAndResumes)
{
    const fs::path dir =
        fs::temp_directory_path() / "autopilot_precision_journal";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const fs::path path = dir / "journal.csv";

    const std::vector<int> widths = {1, 2, 4};
    util::Rng rng(0xFEED);
    const dse::DesignSpace space(widths);
    std::vector<dse::Encoding> encodings;
    std::set<dse::Encoding> seen;
    while (encodings.size() < 18) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            encodings.push_back(encoding);
    }

    std::string firstBytes;
    {
        dse::DseEvaluator evaluator(sharedDatabase(),
                                    al::ObstacleDensity::Dense,
                                    "quantized", {}, {}, widths);
        io::EvalJournalWriter writer(path.string(), 0x9u, {}, true);
        evaluator.setJournalSink(
            [&](std::span<const dse::Evaluation> batch) {
                writer.append(batch);
            });
        evaluator.evaluateBatch(encodings);
        firstBytes = fileBytes(path);
    }
    // The precision layout announces itself in the header and labels
    // every row.
    EXPECT_NE(firstBytes.find(",precision\n"), std::string::npos);

    const io::JournalReplay replay = io::readEvalJournal(path.string());
    ASSERT_TRUE(replay.found);
    EXPECT_FALSE(replay.truncated);
    ASSERT_EQ(replay.entries.size(), encodings.size());
    for (const dse::Evaluation &eval : replay.entries) {
        int width = 0;
        ASSERT_TRUE(sys::precisionFromName(eval.precision, width));
        EXPECT_EQ(eval.point.accel.bytesPerElement, width);
    }

    // Resume: preload re-encodes the labelled rows through the widened
    // space, and the rewritten journal reproduces the original bytes.
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense, "quantized",
                                {}, {}, widths);
    evaluator.preload(replay.entries);
    const fs::path resumed = dir / "resumed.csv";
    io::EvalJournalWriter writer(resumed.string(), 0x9u, replay.entries,
                                 true);
    EXPECT_EQ(fileBytes(resumed), firstBytes);
    // Every replayed point is a cache hit that still counts as fresh
    // exactly once (optimizer budget parity on resume).
    const auto results = evaluator.evaluateBatch(encodings);
    for (const dse::BatchResult &result : results)
        EXPECT_TRUE(result.fresh);
    fs::remove_all(dir);
}

TEST(QuantizedJournal, TornPrecisionTailTruncatesCleanly)
{
    const fs::path dir =
        fs::temp_directory_path() / "autopilot_precision_torn";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const fs::path path = dir / "journal.csv";

    const dse::DesignSpace space({1, 2, 4});
    dse::DseEvaluator evaluator(sharedDatabase(),
                                al::ObstacleDensity::Dense, "quantized",
                                {}, {}, {1, 2, 4});
    {
        io::EvalJournalWriter writer(path.string(), 0x70A7u, {}, true);
        evaluator.setJournalSink(
            [&](std::span<const dse::Evaluation> batch) {
                writer.append(batch);
            });
        evaluator.evaluateBatch(std::vector<dse::Encoding>{
            dse::Encoding{0, 0, 0, 0, 0, 0, 0, 0},
            dse::Encoding{1, 1, 1, 1, 1, 1, 1, 1},
            dse::Encoding{0, 1, 0, 1, 0, 1, 0, 2}});
    }
    // Tear the final row mid-field, as a kill mid-write would.
    std::string bytes = fileBytes(path);
    bytes.resize(bytes.size() - 9);
    std::ofstream(path, std::ios::trunc | std::ios::binary) << bytes;

    const io::JournalReplay replay = io::readEvalJournal(path.string());
    ASSERT_TRUE(replay.found);
    EXPECT_TRUE(replay.truncated);
    EXPECT_EQ(replay.entries.size(), 2u);
    EXPECT_EQ(replay.entries[1].precision, "fp16");
    fs::remove_all(dir);
}
