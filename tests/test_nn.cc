/**
 * @file
 * Unit and property tests for the nn module: layer shape inference, model
 * chaining, and the Fig. 2a E2E template.
 */

#include <gtest/gtest.h>

#include "nn/e2e_template.h"
#include "nn/layer.h"
#include "nn/model.h"

namespace nn = autopilot::nn;

// -------------------------------------------------------------- layer ----

TEST(Layer, ConvOutputShape)
{
    const nn::Layer conv = nn::conv2d("c", 256, 256, 3, 5, 2, 48);
    EXPECT_EQ(conv.outHeight, (256 - 5) / 2 + 1);
    EXPECT_EQ(conv.outWidth, (256 - 5) / 2 + 1);
    EXPECT_EQ(conv.filters, 48);
}

TEST(Layer, ConvParamCount)
{
    const nn::Layer conv = nn::conv2d("c", 32, 32, 16, 3, 1, 8);
    EXPECT_EQ(conv.params(), 3 * 3 * 16 * 8 + 8);
}

TEST(Layer, ConvGemmLowering)
{
    const nn::Layer conv = nn::conv2d("c", 31, 31, 4, 3, 2, 12);
    const nn::GemmShape gemm = conv.gemm();
    EXPECT_EQ(gemm.m, conv.outHeight * conv.outWidth);
    EXPECT_EQ(gemm.n, 12);
    EXPECT_EQ(gemm.k, 3 * 3 * 4);
    EXPECT_EQ(gemm.macs(), gemm.m * gemm.n * gemm.k);
    EXPECT_EQ(conv.macs(), gemm.macs());
}

TEST(Layer, DenseShapes)
{
    const nn::Layer fc = nn::dense("fc", 128, 32);
    EXPECT_EQ(fc.params(), 128 * 32 + 32);
    EXPECT_EQ(fc.ifmapElems(), 128);
    EXPECT_EQ(fc.ofmapElems(), 32);
    const nn::GemmShape gemm = fc.gemm();
    EXPECT_EQ(gemm.m, 1);
    EXPECT_EQ(gemm.n, 32);
    EXPECT_EQ(gemm.k, 128);
}

TEST(Layer, StrideOneKeepsResolutionMinusKernel)
{
    const nn::Layer conv = nn::conv2d("c", 16, 16, 8, 3, 1, 8);
    EXPECT_EQ(conv.outHeight, 14);
    EXPECT_EQ(conv.outWidth, 14);
}

TEST(LayerDeath, RejectsKernelLargerThanInput)
{
    EXPECT_EXIT(nn::conv2d("bad", 4, 4, 3, 5, 1, 8),
                ::testing::ExitedWithCode(1), "kernel larger");
}

TEST(LayerDeath, RejectsNonPositiveDims)
{
    EXPECT_EXIT(nn::dense("bad", 0, 8), ::testing::ExitedWithCode(1),
                "positive");
}

// -------------------------------------------------------------- model ----

TEST(Model, ChainsConsistentLayers)
{
    nn::Model model("m");
    model.append(nn::conv2d("c0", 64, 64, 3, 3, 2, 8));
    // c0 out: 31x31x8 = 7688.
    model.append(nn::dense("fc", 31 * 31 * 8, 10));
    EXPECT_EQ(model.size(), 2u);
    EXPECT_EQ(model.totalMacs(),
              model.layers()[0].macs() + model.layers()[1].macs());
}

TEST(Model, RejectsBrokenChain)
{
    nn::Model model("m");
    model.append(nn::conv2d("c0", 64, 64, 3, 3, 2, 8));
    EXPECT_EXIT(model.append(nn::dense("fc", 999, 10)),
                ::testing::ExitedWithCode(1), "does not chain");
}

TEST(Model, ExtraFeaturesAllowConcat)
{
    nn::Model model("m");
    model.append(nn::dense("a", 10, 20));
    model.append(nn::dense("concat", 20 + 5, 7), 5);
    EXPECT_EQ(model.size(), 2u);
}

TEST(Model, BranchRootSkipsCheck)
{
    nn::Model model("m");
    model.append(nn::dense("a", 10, 20));
    model.appendBranchRoot(nn::dense("side", 4, 6));
    EXPECT_EQ(model.size(), 2u);
}

TEST(Model, AggregatesTotals)
{
    nn::Model model("m");
    model.append(nn::dense("a", 10, 20));
    model.append(nn::dense("b", 20, 5));
    EXPECT_EQ(model.totalParams(), (10 * 20 + 20) + (20 * 5 + 5));
    EXPECT_EQ(model.totalFilterElems(), 10 * 20 + 20 * 5);
    EXPECT_EQ(model.peakIfmapElems(), 20);
}

// ----------------------------------------------------------- template ----

TEST(E2ETemplate, PolicySpaceEnumerates27Combinations)
{
    const nn::PolicySpace space;
    EXPECT_EQ(space.enumerate().size(), 27u);
}

TEST(E2ETemplate, ContainsOnlyLegalValues)
{
    const nn::PolicySpace space;
    nn::PolicyHyperParams ok{5, 48};
    nn::PolicyHyperParams bad_layers{11, 48};
    nn::PolicyHyperParams bad_filters{5, 40};
    EXPECT_TRUE(space.contains(ok));
    EXPECT_FALSE(space.contains(bad_layers));
    EXPECT_FALSE(space.contains(bad_filters));
}

TEST(E2ETemplate, NameEncodesHyperParams)
{
    EXPECT_EQ(nn::policyName({7, 48}), "e2e_l7_f48");
}

TEST(E2ETemplate, BuildsChainedModel)
{
    const nn::Model model = nn::buildE2EModel({5, 32});
    EXPECT_EQ(model.name(), "e2e_l5_f32");
    // 5 convs + fc_trunk + 2 state layers + fc_merge + fc_policy.
    EXPECT_EQ(model.size(), 10u);
    EXPECT_GT(model.totalParams(), 1'000'000);
    EXPECT_GT(model.totalMacs(), 100'000'000);
}

TEST(E2ETemplate, LastLayerIsPolicyHead)
{
    const nn::Model model = nn::buildE2EModel({4, 64});
    const nn::Layer &head = model.layers().back();
    EXPECT_EQ(head.name, "fc_policy");
    EXPECT_EQ(head.filters, nn::TemplateSpec().numActions);
}

/** Parameters must grow monotonically with both hyperparameters. */
class TemplateMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(TemplateMonotonicity, ParamsGrowWithDepth)
{
    const auto [layers, filters] = GetParam();
    if (layers >= 10)
        GTEST_SKIP() << "no deeper configuration to compare";
    const auto lo = nn::buildE2EModel({layers, filters});
    const auto hi = nn::buildE2EModel({layers + 1, filters});
    EXPECT_GE(hi.totalParams(), lo.totalParams());
    EXPECT_GE(hi.totalMacs(), lo.totalMacs());
}

TEST_P(TemplateMonotonicity, ParamsGrowWithWidth)
{
    const auto [layers, filters] = GetParam();
    if (filters >= 64)
        GTEST_SKIP() << "no wider configuration to compare";
    const int next = filters == 32 ? 48 : 64;
    const auto lo = nn::buildE2EModel({layers, filters});
    const auto hi = nn::buildE2EModel({layers, next});
    EXPECT_GT(hi.totalParams(), lo.totalParams());
    EXPECT_GT(hi.totalMacs(), lo.totalMacs());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TemplateMonotonicity,
    ::testing::Combine(::testing::Values(2, 3, 5, 7, 9, 10),
                       ::testing::Values(32, 48, 64)));

TEST(E2ETemplate, DroNetScaleClaim)
{
    // The paper says AutoPilot's models are orders of magnitude
    // (109x-121x) larger than DroNet (~320k parameters).
    const auto dense_best = nn::buildE2EModel({7, 48});
    const double ratio =
        static_cast<double>(dense_best.totalParams()) / 320'000.0;
    EXPECT_GT(ratio, 30.0);
    EXPECT_LT(ratio, 300.0);
}

TEST(E2ETemplate, RejectsOutOfRangeDepth)
{
    EXPECT_EXIT(nn::buildE2EModel({1, 32}), ::testing::ExitedWithCode(1),
                "numConvLayers");
    EXPECT_EXIT(nn::buildE2EModel({11, 32}), ::testing::ExitedWithCode(1),
                "numConvLayers");
}
