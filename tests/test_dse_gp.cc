/**
 * @file
 * Tests for the design-space encoding and the Gaussian-process surrogate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dse/design_space.h"
#include "dse/gaussian_process.h"
#include "util/rng.h"

namespace dse = autopilot::dse;
using autopilot::util::Rng;

// --------------------------------------------------------- design space --

TEST(DesignSpace, CardinalityMatchesTableII)
{
    const dse::DesignSpace space;
    // 9 layers x 3 filters x 8 PE rows x 8 PE cols x 8^3 SRAM choices.
    EXPECT_EQ(space.cardinality(), 9LL * 3 * 8 * 8 * 8 * 8 * 8);
}

TEST(DesignSpace, EncodeDecodeRoundTrip)
{
    const dse::DesignSpace space;
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        const dse::DesignPoint point = space.decode(encoding);
        EXPECT_EQ(space.encode(point), encoding);
    }
}

TEST(DesignSpace, DecodeProducesLegalValues)
{
    const dse::DesignSpace space;
    Rng rng(13);
    const autopilot::nn::PolicySpace policy_space;
    const autopilot::systolic::HardwareSpace hw_space;
    for (int i = 0; i < 100; ++i) {
        const dse::DesignPoint point =
            space.decode(space.randomEncoding(rng));
        EXPECT_TRUE(policy_space.contains(point.policy));
        EXPECT_TRUE(hw_space.contains(point.accel));
        point.accel.validate();
    }
}

TEST(DesignSpace, NeighborChangesExactlyOneDimension)
{
    const dse::DesignSpace space;
    Rng rng(17);
    for (int i = 0; i < 200; ++i) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        const dse::Encoding next = space.neighbor(encoding, rng);
        int changed = 0;
        for (std::size_t d = 0; d < dse::designDims; ++d) {
            if (encoding[d] != next[d])
                ++changed;
            EXPECT_GE(next[d], 0);
            EXPECT_LT(next[d], space.dimensionSizes()[d]);
        }
        EXPECT_EQ(changed, 1);
    }
}

TEST(DesignSpace, FeaturesNormalized)
{
    const dse::DesignSpace space;
    Rng rng(19);
    for (int i = 0; i < 50; ++i) {
        const auto features =
            space.features(space.randomEncoding(rng));
        EXPECT_EQ(features.size(), dse::designDims);
        for (double f : features) {
            EXPECT_GE(f, 0.0);
            EXPECT_LE(f, 1.0);
        }
    }
}

TEST(DesignSpace, PointNameIsStable)
{
    const dse::DesignSpace space;
    const dse::DesignPoint point = space.decode({0, 0, 0, 0, 0, 0, 0});
    EXPECT_EQ(point.name(), "e2e_l2_f32__ws_8x8_i32_f32_o32");
}

TEST(DesignSpaceDeath, DecodeRejectsOutOfRange)
{
    const dse::DesignSpace space;
    EXPECT_EXIT(space.decode({99, 0, 0, 0, 0, 0, 0}),
                ::testing::ExitedWithCode(1), "out of range");
}

// ------------------------------------------------------------------ GP ---

TEST(GaussianProcess, InterpolatesTrainingPoints)
{
    dse::GaussianProcess::Params params;
    params.noiseVariance = 1e-8;
    dse::GaussianProcess gp(params);
    const std::vector<std::vector<double>> inputs = {
        {0.0, 0.0}, {0.5, 0.5}, {1.0, 0.0}};
    const std::vector<double> targets = {1.0, -2.0, 4.0};
    gp.fit(inputs, targets);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const auto prediction = gp.predict(inputs[i]);
        EXPECT_NEAR(prediction.mean, targets[i], 1e-3);
        EXPECT_LT(prediction.stddev(), 0.05);
    }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData)
{
    dse::GaussianProcess gp;
    gp.fit({{0.0}, {0.1}}, {1.0, 1.2});
    const auto near = gp.predict({0.05});
    const auto far = gp.predict({5.0});
    EXPECT_GT(far.variance, near.variance);
}

TEST(GaussianProcess, RevertsToMeanFarFromData)
{
    dse::GaussianProcess gp;
    gp.fit({{0.0}, {0.2}}, {10.0, 20.0});
    const auto far = gp.predict({100.0});
    EXPECT_NEAR(far.mean, 15.0, 1.0); // Prior mean = target mean.
}

TEST(GaussianProcess, HandlesConstantTargets)
{
    dse::GaussianProcess gp;
    gp.fit({{0.0}, {1.0}, {2.0}}, {3.0, 3.0, 3.0});
    EXPECT_NEAR(gp.predict({0.5}).mean, 3.0, 1e-6);
}

TEST(GaussianProcess, SmoothInterpolationBetweenPoints)
{
    dse::GaussianProcess::Params params;
    params.lengthScale = 0.5;
    params.noiseVariance = 1e-8;
    dse::GaussianProcess gp(params);
    gp.fit({{0.0}, {1.0}}, {0.0, 1.0});
    const double mid = gp.predict({0.5}).mean;
    EXPECT_GT(mid, 0.2);
    EXPECT_LT(mid, 0.8);
}

TEST(GaussianProcess, LearnsSmoothFunction)
{
    // Fit y = sin(2 pi x) on a grid; check prediction error off-grid.
    dse::GaussianProcess::Params params;
    params.lengthScale = 0.15;
    params.noiseVariance = 1e-6;
    dse::GaussianProcess gp(params);
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (int i = 0; i <= 20; ++i) {
        const double x = i / 20.0;
        inputs.push_back({x});
        targets.push_back(std::sin(2.0 * M_PI * x));
    }
    gp.fit(inputs, targets);
    for (double x : {0.13, 0.37, 0.61, 0.89}) {
        EXPECT_NEAR(gp.predict({x}).mean, std::sin(2.0 * M_PI * x),
                    0.05)
            << x;
    }
}

TEST(GaussianProcess, VarianceNonNegative)
{
    dse::GaussianProcess gp;
    Rng rng(3);
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (int i = 0; i < 30; ++i) {
        inputs.push_back({rng.uniform(), rng.uniform()});
        targets.push_back(rng.normal());
    }
    gp.fit(inputs, targets);
    for (int i = 0; i < 50; ++i) {
        const auto prediction =
            gp.predict({rng.uniform(), rng.uniform()});
        EXPECT_GE(prediction.variance, 0.0);
    }
}

TEST(GaussianProcessDeath, PredictBeforeFit)
{
    dse::GaussianProcess gp;
    EXPECT_EXIT(gp.predict({0.0}), ::testing::ExitedWithCode(1),
                "not fitted");
}

TEST(GaussianProcessDeath, EmptyTrainingSet)
{
    dse::GaussianProcess gp;
    EXPECT_EXIT(gp.fit({}, {}), ::testing::ExitedWithCode(1), "empty");
}
