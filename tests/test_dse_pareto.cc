/**
 * @file
 * Tests for Pareto utilities, non-dominated sorting, crowding distance and
 * exact hypervolume (2-D and 3-D).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dse/hypervolume.h"
#include "dse/pareto.h"
#include "util/rng.h"

namespace dse = autopilot::dse;
using dse::Objectives;

// ---------------------------------------------------------- dominance ----

TEST(Pareto, DominatesBasics)
{
    EXPECT_TRUE(dse::dominates({1.0, 1.0}, {2.0, 2.0}));
    EXPECT_TRUE(dse::dominates({1.0, 2.0}, {1.0, 3.0}));
    EXPECT_FALSE(dse::dominates({1.0, 3.0}, {2.0, 2.0}));
    EXPECT_FALSE(dse::dominates({1.0, 1.0}, {1.0, 1.0})); // Not strict.
}

TEST(Pareto, EpsilonDominance)
{
    EXPECT_TRUE(dse::epsilonDominates({1.05, 1.0}, {1.0, 1.0}, 0.1));
    EXPECT_FALSE(dse::epsilonDominates({1.2, 1.0}, {1.0, 1.0}, 0.1));
}

TEST(Pareto, FrontExtraction)
{
    const std::vector<Objectives> points = {
        {1.0, 4.0}, {2.0, 3.0}, {3.0, 3.5}, {4.0, 1.0}, {2.5, 2.5}};
    const auto front = dse::paretoFrontIndices(points);
    // {3.0,3.5} is dominated by {2.0,3.0}; the rest are non-dominated.
    EXPECT_EQ(front.size(), 4u);
    for (std::size_t index : front)
        EXPECT_NE(index, 2u);
}

TEST(Pareto, DuplicatePointsBothKept)
{
    const std::vector<Objectives> points = {{1.0, 1.0}, {1.0, 1.0}};
    EXPECT_EQ(dse::paretoFrontIndices(points).size(), 2u);
}

TEST(Pareto, NonDominatedSortLayers)
{
    const std::vector<Objectives> points = {
        {1.0, 1.0},  // front 0
        {2.0, 2.0},  // front 1 (dominated only by front 0)
        {3.0, 3.0},  // front 2
        {0.5, 3.5},  // front 0 (trade-off)
    };
    const auto fronts = dse::nonDominatedSort(points);
    ASSERT_EQ(fronts.size(), 3u);
    EXPECT_EQ(fronts[0].size(), 2u);
    EXPECT_EQ(fronts[1].size(), 1u);
    EXPECT_EQ(fronts[1][0], 1u);
    EXPECT_EQ(fronts[2][0], 2u);
}

TEST(Pareto, CrowdingBoundariesInfinite)
{
    const std::vector<Objectives> points = {
        {1.0, 4.0}, {2.0, 3.0}, {3.0, 2.0}, {4.0, 1.0}};
    const std::vector<std::size_t> front = {0, 1, 2, 3};
    const auto crowding = dse::crowdingDistance(points, front);
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(crowding[0], inf);
    EXPECT_EQ(crowding[3], inf);
    EXPECT_GT(crowding[1], 0.0);
    EXPECT_LT(crowding[1], inf);
}

TEST(Pareto, CrowdingPrefersIsolatedPoints)
{
    // Middle points: one in a dense cluster, one isolated.
    const std::vector<Objectives> points = {
        {0.0, 10.0}, {1.0, 9.0}, {1.2, 8.8}, {6.0, 2.0}, {10.0, 0.0}};
    const std::vector<std::size_t> front = {0, 1, 2, 3, 4};
    const auto crowding = dse::crowdingDistance(points, front);
    EXPECT_GT(crowding[3], crowding[2]);
}

// -------------------------------------------------------- hypervolume ----

TEST(Hypervolume, SinglePoint2D)
{
    EXPECT_DOUBLE_EQ(dse::hypervolume({{1.0, 1.0}}, {3.0, 3.0}), 4.0);
}

TEST(Hypervolume, TwoPoint2DUnion)
{
    // Boxes (1,2)x(2,?) hand-computed: ref (4,4); points (1,3) and (3,1):
    // area = 3*1 + 1*(3-1)... enumerate: point A (1,3): box 3 wide, 1
    // tall = 3; point B (3,1): 1 wide, 3 tall = 3; overlap (1..4 x 3..4)
    // none: total 3 + 3 - 1 (overlap box 1x1 at [3,4]x[3,4])? Overlap of
    // [1,4]x[3,4] and [3,4]x[1,4] is [3,4]x[3,4] = 1.
    const double hv =
        dse::hypervolume({{1.0, 3.0}, {3.0, 1.0}}, {4.0, 4.0});
    EXPECT_DOUBLE_EQ(hv, 5.0);
}

TEST(Hypervolume, DominatedPointAddsNothing2D)
{
    const double base = dse::hypervolume({{1.0, 1.0}}, {4.0, 4.0});
    const double with_dominated =
        dse::hypervolume({{1.0, 1.0}, {2.0, 2.0}}, {4.0, 4.0});
    EXPECT_DOUBLE_EQ(base, with_dominated);
}

TEST(Hypervolume, PointOutsideReferenceClipped)
{
    EXPECT_DOUBLE_EQ(dse::hypervolume({{5.0, 5.0}}, {4.0, 4.0}), 0.0);
    EXPECT_DOUBLE_EQ(dse::hypervolume({}, {4.0, 4.0}), 0.0);
}

TEST(Hypervolume, SinglePoint3D)
{
    EXPECT_DOUBLE_EQ(
        dse::hypervolume({{1.0, 1.0, 1.0}}, {2.0, 3.0, 4.0}),
        1.0 * 2.0 * 3.0);
}

TEST(Hypervolume, ThreePoint3DHandComputed)
{
    // Staircase: (0,2,2), (2,0,2), (2,2,0) with ref (3,3,3).
    // By inclusion-exclusion: each box 3*1*1... compute: box A =
    // (3-0)(3-2)(3-2)=3; B=(3-2)(3-0)(3-2)=3; C=(3-2)(3-2)(3-0)=3.
    // Pairwise overlaps: A&B = (3-2)(3-2)(3-2)=1 etc. (three pairs),
    // triple overlap = 1. HV = 9 - 3 + 1 = 7.
    const double hv = dse::hypervolume(
        {{0.0, 2.0, 2.0}, {2.0, 0.0, 2.0}, {2.0, 2.0, 0.0}},
        {3.0, 3.0, 3.0});
    EXPECT_DOUBLE_EQ(hv, 7.0);
}

TEST(Hypervolume, MonotoneUnderAddition)
{
    autopilot::util::Rng rng(99);
    std::vector<Objectives> points;
    const Objectives reference = {1.0, 1.0, 1.0};
    double prev = 0.0;
    for (int i = 0; i < 40; ++i) {
        points.push_back(
            {rng.uniform(), rng.uniform(), rng.uniform()});
        const double hv = dse::hypervolume(points, reference);
        EXPECT_GE(hv, prev - 1e-12);
        EXPECT_LE(hv, 1.0 + 1e-12);
        prev = hv;
    }
}

TEST(Hypervolume, ContributionOfDominatedIsZero)
{
    const std::vector<Objectives> front = {{1.0, 1.0, 1.0}};
    EXPECT_DOUBLE_EQ(dse::hypervolumeContribution(
                         front, {2.0, 2.0, 2.0}, {3.0, 3.0, 3.0}),
                     0.0);
    EXPECT_GT(dse::hypervolumeContribution(front, {0.5, 2.0, 2.0},
                                           {3.0, 3.0, 3.0}),
              0.0);
}

TEST(Hypervolume, AgreesWithMonteCarlo3D)
{
    // Property: exact 3-D hypervolume matches a Monte-Carlo estimate.
    autopilot::util::Rng rng(7);
    std::vector<Objectives> points;
    for (int i = 0; i < 12; ++i)
        points.push_back(
            {rng.uniform(), rng.uniform(), rng.uniform()});
    const Objectives reference = {1.0, 1.0, 1.0};
    const double exact = dse::hypervolume(points, reference);

    int dominated = 0;
    const int samples = 200000;
    for (int s = 0; s < samples; ++s) {
        const double sx = rng.uniform();
        const double sy = rng.uniform();
        const double sz = rng.uniform();
        for (const Objectives &point : points) {
            if (point[0] <= sx && point[1] <= sy && point[2] <= sz) {
                ++dominated;
                break;
            }
        }
    }
    const double estimate = static_cast<double>(dominated) / samples;
    EXPECT_NEAR(exact, estimate, 0.01);
}

TEST(Hypervolume, DefaultReferenceExceedsAllPoints)
{
    const std::vector<Objectives> points = {{1.0, 5.0}, {3.0, 2.0}};
    const Objectives reference = dse::defaultReference(points);
    EXPECT_GT(reference[0], 3.0);
    EXPECT_GT(reference[1], 5.0);
    EXPECT_GT(dse::hypervolume(points, reference), 0.0);
}

TEST(HypervolumeDeath, RejectsHighDimensions)
{
    EXPECT_EXIT(dse::hypervolume({{1.0, 1.0, 1.0, 1.0}},
                                 {2.0, 2.0, 2.0, 2.0}),
                ::testing::ExitedWithCode(1), "objectives");
}
