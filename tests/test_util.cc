/**
 * @file
 * Unit tests for the util substrate: RNG determinism, statistics, matrix
 * algebra / Cholesky, and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/matrix.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace au = autopilot::util;

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed)
{
    au::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    au::Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += (a.next64() == b.next64());
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    au::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double value = rng.uniform();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    au::Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int value = rng.uniformInt(3, 8);
        EXPECT_GE(value, 3);
        EXPECT_LE(value, 8);
        saw_lo |= (value == 3);
        saw_hi |= (value == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRoughlyUnitMoments)
{
    au::Rng rng(11);
    std::vector<double> samples;
    samples.reserve(20000);
    for (int i = 0; i < 20000; ++i)
        samples.push_back(rng.normal());
    EXPECT_NEAR(au::mean(samples), 0.0, 0.03);
    EXPECT_NEAR(au::stddev(samples), 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStreams)
{
    au::Rng parent(13);
    au::Rng child_a = parent.fork(1);
    au::Rng child_b = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += (child_a.next64() == child_b.next64());
    EXPECT_LT(equal, 4);
}

TEST(Rng, BernoulliMatchesProbability)
{
    au::Rng rng(17);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements)
{
    au::Rng rng(19);
    std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = values;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

// -------------------------------------------------------------- stats ----

TEST(Stats, MeanAndVariance)
{
    const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                        7.0, 9.0};
    EXPECT_DOUBLE_EQ(au::mean(values), 5.0);
    EXPECT_NEAR(au::variance(values), 32.0 / 7.0, 1e-12);
}

TEST(Stats, GeomeanOfPowers)
{
    EXPECT_NEAR(au::geomean({1.0, 4.0, 16.0}), 4.0, 1e-12);
}

TEST(Stats, PercentileInterpolates)
{
    const std::vector<double> values = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(au::percentile(values, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(au::percentile(values, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(au::percentile(values, 50.0), 25.0);
}

TEST(Stats, RunningStatsMatchesBatch)
{
    const std::vector<double> values = {1.5, -2.0, 3.25, 0.0, 9.0, -4.5};
    au::RunningStats rs;
    for (double value : values)
        rs.add(value);
    EXPECT_EQ(rs.count(), values.size());
    EXPECT_NEAR(rs.mean(), au::mean(values), 1e-12);
    EXPECT_NEAR(rs.variance(), au::variance(values), 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), -4.5);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

// ------------------------------------------------------------- matrix ----

TEST(Matrix, MultiplyIdentity)
{
    au::Matrix m(2, 3, 0.0);
    m(0, 0) = 1.0; m(0, 1) = 2.0; m(0, 2) = 3.0;
    m(1, 0) = 4.0; m(1, 1) = 5.0; m(1, 2) = 6.0;
    const au::Matrix result = au::Matrix::identity(2).multiply(m);
    EXPECT_EQ(result, m);
}

TEST(Matrix, TransposeRoundTrip)
{
    au::Matrix m(2, 3, 0.0);
    m(0, 2) = 7.5;
    m(1, 0) = -2.0;
    EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, CholeskySolvesLinearSystem)
{
    // SPD matrix A = B^T B + I.
    au::Matrix b(3, 3, 0.0);
    b(0, 0) = 2.0; b(0, 1) = 1.0; b(0, 2) = 0.5;
    b(1, 0) = 0.0; b(1, 1) = 3.0; b(1, 2) = 1.0;
    b(2, 0) = 1.0; b(2, 1) = 0.0; b(2, 2) = 1.5;
    au::Matrix a = b.transposed().multiply(b).add(
        au::Matrix::identity(3));

    const std::vector<double> x_true = {1.0, -2.0, 3.0};
    std::vector<double> rhs(3, 0.0);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            rhs[i] += a(i, j) * x_true[j];

    const au::CholeskyFactor factor(a);
    const std::vector<double> x = factor.solve(rhs);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Matrix, CholeskyLogDeterminant)
{
    au::Matrix a = au::Matrix::identity(4).scaled(2.0);
    const au::CholeskyFactor factor(a, 0.0);
    EXPECT_NEAR(factor.logDeterminant(), 4.0 * std::log(2.0), 1e-9);
}

TEST(Matrix, CholeskyFactorReconstructs)
{
    au::Matrix a(2, 2, 0.0);
    a(0, 0) = 4.0; a(0, 1) = 2.0;
    a(1, 0) = 2.0; a(1, 1) = 3.0;
    const au::CholeskyFactor factor(a, 0.0);
    const au::Matrix l = factor.lower();
    const au::Matrix reconstructed = l.multiply(l.transposed());
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            EXPECT_NEAR(reconstructed(i, j), a(i, j), 1e-9);
}

// -------------------------------------------------------------- table ----

TEST(Table, PrintsAlignedColumns)
{
    au::Table table({"design", "fps"});
    table.addRow({"AP", "46.0"});
    table.addRow({"HT", "205.0"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("design"), std::string::npos);
    EXPECT_NE(text.find("205.0"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, CsvEscapesSeparators)
{
    au::Table table({"name", "note"});
    table.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
    EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(au::formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(au::formatRatio(2.25), "2.25x");
}
