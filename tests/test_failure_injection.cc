/**
 * @file
 * Failure-injection and edge-case tests: degenerate hardware shapes,
 * starved memory systems, pathological environments and boundary
 * mission inputs. The library must stay well-defined (and physically
 * sensible) at the corners of its input space.
 */

#include <gtest/gtest.h>

#include "airlearning/rollout.h"
#include "core/autopilot.h"
#include "nn/e2e_template.h"
#include "power/npu_power.h"
#include "systolic/cycle_engine.h"
#include "uav/mission.h"
#include "uav/propulsion.h"

namespace sys = autopilot::systolic;
namespace nn = autopilot::nn;
namespace al = autopilot::airlearning;
namespace uav = autopilot::uav;
namespace pw = autopilot::power;

// ------------------------------------------------ degenerate hardware ----

TEST(FailureInjection, ExtremeAspectRatioArraysStillCorrect)
{
    const nn::Model model = nn::buildE2EModel({5, 32});
    for (const auto &[rows, cols] : {std::pair{8, 1024},
                                     std::pair{1024, 8}}) {
        sys::AcceleratorConfig config;
        config.peRows = rows;
        config.peCols = cols;
        config.ifmapSramKb = 64;
        config.filterSramKb = 64;
        config.ofmapSramKb = 64;
        const sys::CycleEngine engine(config);
        const sys::RunResult run = engine.run(model);
        EXPECT_EQ(run.totalMacs, model.totalMacs())
            << rows << "x" << cols;
        EXPECT_GT(run.framesPerSecond(config.clockGhz), 0.0);
        // Utilization of such skewed arrays must be terrible but legal.
        EXPECT_LE(run.peUtilization(config.peCount()), 1.0);
    }
}

TEST(FailureInjection, OneByteDramBusIsPureStall)
{
    sys::AcceleratorConfig config;
    config.peRows = 64;
    config.peCols = 64;
    config.dramBytesPerCycle = 1;
    const sys::CycleEngine engine(config);
    const auto result =
        engine.runLayer(nn::dense("fc", 12288, 2048));
    EXPECT_GT(result.stallCycles, 10 * result.computeCycles);
    // Power must remain finite and DRAM-dominated-but-sane.
    const pw::NpuPowerModel npu(config);
    sys::RunResult run;
    run.layers.push_back(result);
    run.totalCycles = result.totalCycles;
    run.computeCycles = result.computeCycles;
    run.stallCycles = result.stallCycles;
    run.totalMacs = result.gemm.macs();
    run.traffic = result.traffic;
    const double watts = npu.averagePowerW(run);
    EXPECT_GT(watts, 0.0);
    EXPECT_LT(watts, 50.0);
}

TEST(FailureInjection, MinimalSramEverywhereStillConserves)
{
    sys::AcceleratorConfig config;
    config.peRows = 8;
    config.peCols = 8;
    config.ifmapSramKb = 32;
    config.filterSramKb = 32;
    config.ofmapSramKb = 32;
    const nn::Layer conv = nn::conv2d("c", 128, 128, 48, 3, 1, 96);
    const auto schedule = sys::scheduleGemm(conv.gemm(), config);
    const auto traffic = sys::computeTraffic(conv, schedule, config);
    std::int64_t shares = 0;
    for (std::int64_t f = 0; f < schedule.foldCount(); ++f) {
        shares += sys::foldFetchBytes(conv, schedule, config, f);
        shares += sys::foldWritebackBytes(conv, schedule, config, f);
    }
    EXPECT_EQ(shares, traffic.totalDramBytes());
}

// --------------------------------------------- pathological missions -----

TEST(FailureInjection, ZeroThroughputComputeMeansZeroMissions)
{
    const uav::MissionModel model(uav::zhangNano());
    const auto result = model.evaluate(24.0, 0.8, 0.0, 60.0);
    EXPECT_FALSE(result.feasible);
    EXPECT_DOUBLE_EQ(result.numMissions, 0.0);
}

TEST(FailureInjection, ExactHoverLimitIsInfeasible)
{
    const uav::UavSpec nano = uav::zhangNano();
    // Mass where thrust exactly equals weight.
    const double limit_g =
        nano.maxThrustNewtons / uav::gravity * 1000.0;
    const uav::MissionModel model(nano);
    const auto result =
        model.evaluate(limit_g - nano.baseMassGrams, 0.5, 60.0, 60.0);
    EXPECT_FALSE(result.feasible);
}

TEST(FailureInjection, TinyBatteryStillPositiveMissions)
{
    uav::UavSpec nano = uav::zhangNano();
    nano.batteryMah = 1.0;
    const uav::MissionModel model(nano);
    const auto result = model.evaluate(24.0, 0.8, 60.0, 60.0);
    ASSERT_TRUE(result.feasible);
    EXPECT_GT(result.numMissions, 0.0);
    EXPECT_LT(result.numMissions, 1.0); // Cannot finish one mission.
}

// --------------------------------------------- pathological episodes -----

TEST(FailureInjection, BlindPolicyMostlyCollides)
{
    al::PolicyCapability blind;
    blind.quality = 0.0;
    blind.perceptionRangeM = 0.0;
    blind.detectionProb = 0.0;
    blind.headingNoiseRad = 0.0;
    const auto result = al::evaluatePolicy(
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Dense),
        blind, 200, 3);
    EXPECT_GT(result.collisions, result.successes);
}

TEST(FailureInjection, SingleStepBudgetTimesOut)
{
    al::Environment env;
    env.arenaSize = 30.0;
    env.start = {2.0, 2.0};
    env.goal = {25.0, 25.0};
    al::RolloutConfig config;
    config.maxSteps = 1;
    autopilot::util::Rng rng(1);
    const auto result = al::runEpisode(
        env, al::PolicyCapability::fromQuality(0.9), config, rng);
    EXPECT_EQ(result.outcome, al::EpisodeOutcome::Timeout);
    EXPECT_EQ(result.steps, 1);
}

TEST(FailureInjection, GoalAtStartSucceedsImmediately)
{
    al::Environment env;
    env.arenaSize = 30.0;
    env.start = {5.0, 5.0};
    env.goal = {5.3, 5.0}; // Within goal tolerance.
    autopilot::util::Rng rng(1);
    const auto result = al::runEpisode(
        env, al::PolicyCapability::fromQuality(0.5),
        al::RolloutConfig(), rng);
    EXPECT_EQ(result.outcome, al::EpisodeOutcome::Success);
    EXPECT_LE(result.steps, 3);
}

// ---------------------------------------------------- tiny DSE budgets ---

TEST(FailureInjection, MinimalDseBudgetStillSelects)
{
    autopilot::core::TaskSpec task;
    task.density = al::ObstacleDensity::Low;
    task.validationEpisodes = 20;
    task.dseBudget = 3;
    autopilot::core::AutoPilot pilot(task);
    const auto run = pilot.designFor(uav::zhangNano());
    EXPECT_FALSE(run.candidates.empty());
    EXPECT_LE(run.dseResult.archive.size(), 3u);
}
