/**
 * @file
 * Tests for the extension features: model summaries, run reports, the
 * training-curve model, the Phase 3 real-time latency constraint, the
 * battery derating and the wind-disturbance knob.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "airlearning/rollout.h"
#include "airlearning/trainer.h"
#include "airlearning/training_curve.h"
#include "core/autopilot.h"
#include "core/report.h"
#include "nn/summary.h"
#include "uav/uav_spec.h"

namespace nn = autopilot::nn;
namespace al = autopilot::airlearning;
namespace core = autopilot::core;
namespace uav = autopilot::uav;

// ------------------------------------------------------------ summary ----

TEST(Summary, StatsPartitionByLayerKind)
{
    const nn::Model model = nn::buildE2EModel({5, 32});
    const nn::ModelStats stats = nn::computeStats(model);
    EXPECT_EQ(stats.totalParams, model.totalParams());
    EXPECT_EQ(stats.totalMacs, model.totalMacs());
    EXPECT_EQ(stats.convParams + stats.denseParams, stats.totalParams);
    EXPECT_EQ(stats.convMacs + stats.denseMacs, stats.totalMacs);
    // The E2E template is dense-parameter heavy but conv-MAC heavy.
    EXPECT_GT(stats.denseParamFraction(), 0.7);
    EXPECT_GT(stats.convMacs, stats.denseMacs);
}

TEST(Summary, PrintsEveryLayer)
{
    const nn::Model model = nn::buildE2EModel({3, 48});
    std::ostringstream os;
    nn::printSummary(model, os);
    const std::string text = os.str();
    for (const nn::Layer &layer : model.layers())
        EXPECT_NE(text.find(layer.name), std::string::npos);
    EXPECT_NE(text.find("total params"), std::string::npos);
}

// ------------------------------------------------------ training curve ---

TEST(TrainingCurve, SaturatesAtAsymptote)
{
    const al::LearningCurve curve(0.8, 10'000'000);
    EXPECT_DOUBLE_EQ(curve.qualityAtStep(0.0), 0.0);
    EXPECT_LT(curve.qualityAtStep(curve.tauSteps()), 0.8);
    EXPECT_NEAR(curve.qualityAtStep(20.0 * curve.tauSteps()), 0.8,
                1e-6);
}

TEST(TrainingCurve, BiggerModelsTrainSlower)
{
    const al::LearningCurve small(0.8, 1'000'000);
    const al::LearningCurve big(0.8, 60'000'000);
    EXPECT_GT(big.tauSteps(), small.tauSteps());
    EXPECT_GT(big.stepsToConverge(), small.stepsToConverge());
}

TEST(TrainingCurve, BudgetCapsTrainingSteps)
{
    al::LearningCurveParams params;
    params.stepBudget = 1e6;
    const al::LearningCurve big(0.8, 200'000'000, params);
    EXPECT_FALSE(big.convergesWithinBudget());
    EXPECT_DOUBLE_EQ(big.trainingSteps(), 1e6);
    EXPECT_LT(big.achievedQuality(), 0.8);

    const al::LearningCurve small(0.8, 1'000'000, params);
    EXPECT_TRUE(small.convergesWithinBudget());
    EXPECT_LT(small.trainingSteps(), 1e6);
}

TEST(TrainingCurve, TrainerRecordsSteps)
{
    al::TrainerConfig config;
    config.validationEpisodes = 30;
    const al::Trainer trainer(config);
    const al::PolicyRecord record =
        trainer.trainOne({7, 48}, al::ObstacleDensity::Dense);
    EXPECT_GT(record.trainingSteps, 0);
    EXPECT_LE(record.trainingSteps, 1'000'000);
}

// --------------------------------------------------- latency constraint --

TEST(LatencyConstraint, FiltersSlowCandidates)
{
    core::TaskSpec task;
    task.density = al::ObstacleDensity::Dense;
    task.validationEpisodes = 40;
    task.dseBudget = 40;
    task.maxLatencyMs = 40.0; // 25 FPS real-time bound.
    core::AutoPilot pilot(task);
    const auto candidates = pilot.candidatesFor(uav::zhangNano());
    ASSERT_FALSE(candidates.empty());
    for (const core::FullSystemDesign &candidate : candidates)
        EXPECT_LE(candidate.eval.latencyMs, 40.0 + 1e-9);
}

TEST(LatencyConstraint, UnconstrainedKeepsSlowDesigns)
{
    core::TaskSpec task;
    task.density = al::ObstacleDensity::Dense;
    task.validationEpisodes = 40;
    task.dseBudget = 40;
    core::AutoPilot constrained_pilot([&] {
        core::TaskSpec t = task;
        t.maxLatencyMs = 40.0;
        return t;
    }());
    core::AutoPilot free_pilot(task);
    const auto constrained =
        constrained_pilot.candidatesFor(uav::zhangNano());
    const auto unconstrained =
        free_pilot.candidatesFor(uav::zhangNano());
    EXPECT_LE(constrained.size(), unconstrained.size());
}

// --------------------------------------------------------------- wind ----

TEST(Wind, GustsDegradeSuccess)
{
    const auto env_config =
        al::EnvironmentConfig::forDensity(al::ObstacleDensity::Medium);
    const auto capability = al::PolicyCapability::fromQuality(0.8);
    al::RolloutConfig calm;
    al::RolloutConfig windy;
    windy.windSigmaM = 0.12;
    const auto calm_result =
        al::evaluatePolicy(env_config, capability, 300, 5, calm);
    const auto windy_result =
        al::evaluatePolicy(env_config, capability, 300, 5, windy);
    EXPECT_GT(calm_result.successRate(),
              windy_result.successRate() + 0.03);
}

// ------------------------------------------------------------- report ----

TEST(Report, DesignReportMentionsKeyMetrics)
{
    core::TaskSpec task;
    task.density = al::ObstacleDensity::Low;
    task.validationEpisodes = 30;
    task.dseBudget = 25;
    core::AutoPilot pilot(task);
    const core::AutoPilotRun run = pilot.designFor(uav::djiSpark());
    std::ostringstream os;
    core::printRunReport(run, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("DJI Spark"), std::string::npos);
    EXPECT_NE(text.find("missions / charge"), std::string::npos);
    EXPECT_NE(text.find("knee point"), std::string::npos);
    EXPECT_NE(text.find("Phase 2 archive"), std::string::npos);
}

TEST(Report, StrategyComparisonHasFourRows)
{
    core::TaskSpec task;
    task.density = al::ObstacleDensity::Low;
    task.validationEpisodes = 30;
    task.dseBudget = 25;
    core::AutoPilot pilot(task);
    const auto candidates = pilot.candidatesFor(uav::zhangNano());
    std::ostringstream os;
    core::printStrategyComparison(candidates, os);
    const std::string text = os.str();
    for (const char *label : {"HT", "LP", "HE", "AP"})
        EXPECT_NE(text.find(label), std::string::npos);
}
