/**
 * @file
 * Tests for the campaign service: submission parsing/rejection, the
 * inbox -> result round trip, per-tenant fair-share admission, and
 * drain/restart resume byte-identity. The real SIGKILL variant (kill
 * -9 mid-serve, restart, diff against golden) runs in CI's serve-smoke
 * job; here the drain path exercises the same journals in-process.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "runner/campaign.h"
#include "runner/service.h"
#include "util/cancel.h"

namespace fs = std::filesystem;
namespace runner = autopilot::runner;
namespace uav = autopilot::uav;
namespace util = autopilot::util;

namespace
{

fs::path
testDir(const std::string &name)
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("autopilot_service_" + std::to_string(::getpid()) + "_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Drop a submission into the inbox the documented way: write aside,
 * then rename into place so the scanner never sees a torn file. */
void
submit(const fs::path &root, const std::string &id,
       const std::string &json)
{
    const fs::path tmp = root / (id + ".tmp");
    {
        std::ofstream out(tmp);
        out << json;
    }
    fs::rename(tmp, root / "inbox" / (id + ".json"));
}

std::string
fileBytes(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Value of one "key,value" line in a status file ("" when absent). */
std::string
statusField(const fs::path &root, const std::string &id,
            const std::string &key)
{
    std::ifstream in(root / "status" / (id + ".status"));
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind(key + ",", 0) == 0)
            return line.substr(key.size() + 1);
    }
    return "";
}

/** Fast service config over a fresh root. */
runner::ServiceConfig
fastConfig(const fs::path &root)
{
    runner::ServiceConfig config;
    config.rootDir = root.string();
    config.pollSeconds = 0.005;
    config.poolThreads = 2;
    config.retry.maxAttempts = 2;
    config.retry.initialBackoffSeconds = 1e-4;
    config.retry.maxBackoffSeconds = 1e-3;
    return config;
}

/// Small-but-real submission: finishes in seconds, still runs all
/// three phases with journaled Phase 2 batches.
const char *kSmallSubmission =
    R"({"tenant": "alice", "density": "low", "episodes": 10,)"
    R"( "budget": 8, "threads": 2})";

} // namespace

// ------------------------------------------------- submission parsing ----

TEST(Submission, ParsesFullDocumentAndAppliesDefaults)
{
    runner::CampaignSubmission sub;
    std::string error;
    ASSERT_TRUE(runner::parseSubmission(
        "exp-1",
        R"({"tenant": "alice", "density": "medium", "episodes": 20,)"
        R"( "budget": 12, "seed": 7, "threads": 2, "optimizer": "sa",)"
        R"( "backend": "analytical", "uav": "spark",)"
        R"( "deadline_s": 30.5, "camera_mbps": 2.5, "host_mbps": 1,)"
        R"( "npu_floor": 0.25})",
        sub, error))
        << error;
    EXPECT_EQ(sub.id, "exp-1");
    EXPECT_EQ(sub.tenant, "alice");
    EXPECT_EQ(sub.task.name, "exp-1");
    EXPECT_EQ(sub.task.spec.validationEpisodes, 20);
    EXPECT_EQ(sub.task.spec.dseBudget, 12);
    EXPECT_EQ(sub.task.spec.seed, 7u);
    EXPECT_EQ(sub.task.spec.threads, 2);
    EXPECT_EQ(sub.task.spec.optimizer, "sa");
    EXPECT_DOUBLE_EQ(sub.task.deadlineSeconds, 30.5);
    EXPECT_DOUBLE_EQ(sub.task.spec.contention.cameraBytesPerSec, 2.5e6);
    EXPECT_DOUBLE_EQ(sub.task.spec.contention.hostBytesPerSec, 1e6);
    EXPECT_DOUBLE_EQ(sub.task.spec.contention.npuFloorFraction, 0.25);

    runner::CampaignSubmission defaults;
    ASSERT_TRUE(runner::parseSubmission("d", "{}", defaults, error))
        << error;
    EXPECT_EQ(defaults.tenant, "default");
    EXPECT_EQ(defaults.task.spec.optimizer, "bo");
    EXPECT_EQ(defaults.task.spec.backend, "analytical");
    EXPECT_DOUBLE_EQ(defaults.task.deadlineSeconds, 0.0);
}

TEST(Submission, RejectsBadDocumentsWithDiagnostics)
{
    const struct
    {
        const char *id;
        const char *json;
        const char *needle; ///< Must appear in the error message.
    } cases[] = {
        {"x", "{", "offset"},                 // Malformed JSON.
        {"x", "[1,2]", "object"},             // Wrong top-level type.
        {"x", R"({"bogus": 1})", "bogus"},    // Unknown key.
        {"x", R"({"episodes": 0})", "episodes"},
        {"x", R"({"episodes": 2.5})", "episodes"},
        {"x", R"({"budget": -3})", "budget"},
        {"x", R"({"density": "extreme"})", "density"},
        {"x", R"({"optimizer": "sgd"})", "optimizer"},
        {"x", R"({"backend": "quantum"})", "backend"},
        {"x", R"({"uav": "jumbo"})", "uav"},
        {"x", R"({"npu_floor": 1.0})", "npu_floor"},
        {"x", R"({"deadline_s": -1})", "deadline_s"},
        {"x", R"({"dram_banks": 0, "backend": "dram"})", "dram_banks"},
        {"x", R"({"row_policy": "ajar", "backend": "dram"})",
         "row_policy"},
        {"x", R"({"dram_timing": "4:4", "backend": "dram"})",
         "dram_timing"},
        // dram_* keys only make sense for the dram/tiered backends.
        {"x", R"({"dram_banks": 8})", "dram"},
        {"x", R"({"dram_banks": 8, "backend": "cycle"})", "dram"},
        // A degenerate channel is diagnosed at submission time.
        {"x",
         R"({"backend": "dram", "camera_mbps": 100,)"
         R"( "dram_timing": "4:4:4:10:36"})",
         "infeasible"},
        {"x", R"({"tenant": "has space"})", "tenant"},
        {"bad/id", "{}", "id"}, // Path-hostile campaign id.
        {"", "{}", "id"},
    };
    for (const auto &bad : cases) {
        runner::CampaignSubmission sub;
        std::string error;
        EXPECT_FALSE(
            runner::parseSubmission(bad.id, bad.json, sub, error))
            << bad.json;
        EXPECT_NE(error.find(bad.needle), std::string::npos)
            << "error '" << error << "' should mention '" << bad.needle
            << "'";
    }
}

TEST(Submission, DramKeysBuildBankLevelChannel)
{
    runner::CampaignSubmission sub;
    std::string error;
    ASSERT_TRUE(runner::parseSubmission(
        "d-1",
        R"({"backend": "dram", "dram_banks": 16,)"
        R"( "row_policy": "closed", "dram_timing": "3:5:7:2000:40",)"
        R"( "camera_mbps": 400, "host_mbps": 100})",
        sub, error))
        << error;
    EXPECT_EQ(sub.task.spec.backend, "dram");
    ASSERT_EQ(sub.task.spec.dram.generators.size(), 2u);
    EXPECT_EQ(sub.task.spec.dram.timing.banks, 16);
    EXPECT_EQ(sub.task.spec.dram.timing.rowPolicy,
              autopilot::dram::RowPolicy::Closed);
    EXPECT_EQ(sub.task.spec.dram.timing.tCasCycles, 3);
    EXPECT_EQ(sub.task.spec.dram.timing.tRefiCycles, 2000);
    EXPECT_DOUBLE_EQ(sub.task.spec.dram.backgroundBytesPerSec(),
                     5.0e8);
    // The same rates feed the generators, never also the flat
    // surcharge - bytes must not be billed twice.
    EXPECT_FALSE(sub.task.spec.contention.enabled());

    // "dram" without traffic keys is legal: the backend then takes the
    // pure-cycle path (the bit-identical degraded mode).
    runner::CampaignSubmission quiet;
    ASSERT_TRUE(runner::parseSubmission(
        "d-2", R"({"backend": "dram"})", quiet, error))
        << error;
    EXPECT_FALSE(quiet.task.spec.dram.enabled());
}

TEST(Submission, MissionMixScenariosParseIntoTaskSpec)
{
    runner::CampaignSubmission sub;
    std::string error;
    ASSERT_TRUE(runner::parseSubmission(
        "fleet",
        R"({"mission_mix": [)"
        R"({"name": "transit", "mission": "nav", "weight": 2},)"
        R"({"name": "survey", "airframe": "fixed-wing",)"
        R"( "mission": "search", "area_m2": 40000, "spacing_m": 20,)"
        R"( "weight": 1}]})",
        sub, error))
        << error;
    const uav::MissionMix &mix = sub.task.spec.missionMix;
    ASSERT_EQ(mix.scenarios.size(), 2u);
    EXPECT_EQ(mix.tag(), "transit+survey");
    EXPECT_EQ(mix.scenarios[0].airframe, uav::AirframeKind::Quadrotor);
    EXPECT_DOUBLE_EQ(mix.scenarios[0].weight, 2.0);
    EXPECT_EQ(mix.scenarios[1].airframe, uav::AirframeKind::FixedWing);
    EXPECT_EQ(mix.scenarios[1].profile.missionClass,
              uav::MissionClass::SearchPattern);
    EXPECT_DOUBLE_EQ(mix.scenarios[1].profile.searchAreaM2, 40000.0);
}

TEST(Submission, AirframeShorthandBuildsSingleScenarioMix)
{
    runner::CampaignSubmission sub;
    std::string error;
    ASSERT_TRUE(runner::parseSubmission(
        "fw", R"({"airframe": "fixed-wing"})", sub, error))
        << error;
    ASSERT_EQ(sub.task.spec.missionMix.scenarios.size(), 1u);
    EXPECT_EQ(sub.task.spec.missionMix.scenarios[0].airframe,
              uav::AirframeKind::FixedWing);

    // Naming the default airframe keeps the mix empty, preserving the
    // legacy fingerprint (and thus resumability of old journals).
    runner::CampaignSubmission quad;
    ASSERT_TRUE(runner::parseSubmission(
        "q", R"({"airframe": "quad"})", quad, error))
        << error;
    EXPECT_TRUE(quad.task.spec.missionMix.isDefault());
}

TEST(Submission, LegacySubmissionDefaultsToQuadPointToPoint)
{
    runner::CampaignSubmission sub;
    std::string error;
    ASSERT_TRUE(runner::parseSubmission("old", kSmallSubmission, sub,
                                        error))
        << error;
    EXPECT_TRUE(sub.task.spec.missionMix.isDefault());
    EXPECT_EQ(sub.task.spec.missionMix.tag(), "-");
}

TEST(Submission, RejectsBadMissionMixWithDiagnostics)
{
    const struct
    {
        const char *json;
        const char *needle;
    } cases[] = {
        {R"({"airframe": "fixed-wing", "mission_mix": []})",
         "mutually exclusive"},
        {R"({"airframe": "biplane"})", "airframe"},
        {R"({"mission_mix": {"name": "a"}})", "array"},
        {R"({"mission_mix": [{"name": "a", "rotor": 1}]})", "rotor"},
        {R"({"mission_mix": [{"name": "a", "mission": "loiter"}]})",
         "mission"},
        {R"({"mission_mix": [{"name": "a", "weight": 0}]})", "weight"},
        {R"({"mission_mix": [{"name": "a"}, {"name": "a"}]})",
         "duplicate"},
        {R"({"mission_mix": [{"name": "a", "mission": "search"}]})",
         "area_m2"},
        {R"({"mission_mix": [{"name": "Bad Name"}]})", "name"},
    };
    for (const auto &bad : cases) {
        runner::CampaignSubmission sub;
        std::string error;
        EXPECT_FALSE(
            runner::parseSubmission("x", bad.json, sub, error))
            << bad.json;
        EXPECT_NE(error.find(bad.needle), std::string::npos)
            << "error '" << error << "' should mention '" << bad.needle
            << "'";
    }
}

TEST(Submission, ParseMissionMixReadsStandaloneDocuments)
{
    // The same grammar backs campaign_runner's --mission-mix file.
    uav::MissionMix mix;
    std::string error;
    ASSERT_TRUE(runner::parseMissionMix(
        R"([{"name": "drop", "mission": "delivery",)"
        R"( "payload_g": 150, "distance_m": 80}])",
        mix, error))
        << error;
    ASSERT_EQ(mix.scenarios.size(), 1u);
    EXPECT_EQ(mix.scenarios[0].profile.missionClass,
              uav::MissionClass::PayloadDelivery);
    EXPECT_DOUBLE_EQ(mix.scenarios[0].profile.deliveryPayloadG, 150.0);
    EXPECT_DOUBLE_EQ(mix.scenarios[0].profile.distanceM, 80.0);

    EXPECT_FALSE(runner::parseMissionMix("[not json", mix, error));
    EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------- service loop ----

TEST(Service, InboxToResultRoundTripWithRejects)
{
    const fs::path root = testDir("roundtrip");
    runner::ServiceConfig config = fastConfig(root);
    config.maxActiveCampaigns = 2;
    config.maxCampaigns = 2;
    runner::CampaignService service(config);

    submit(root, "good-a", kSmallSubmission);
    submit(root, "bad", R"({"backend": "quantum"})");
    submit(root, "good-b",
           R"({"tenant": "bob", "density": "medium",)"
           R"( "episodes": 10, "budget": 8})");

    const runner::ServiceReport report = service.serve();
    EXPECT_EQ(report.admitted, 2u);
    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.rejected, 1u);
    EXPECT_EQ(report.interrupted, 0u);

    // Terminal layout: results + done for the good ones, a rejected
    // marker for the bad one, and an empty inbox/active.
    EXPECT_TRUE(fs::exists(root / "results" / "good-a.result"));
    EXPECT_TRUE(fs::exists(root / "results" / "good-b.result"));
    EXPECT_TRUE(fs::exists(root / "done" / "good-a.json"));
    EXPECT_TRUE(fs::exists(root / "done" / "bad.rejected"));
    EXPECT_FALSE(fs::exists(root / "results" / "bad.result"));
    EXPECT_TRUE(fs::is_empty(root / "inbox"));
    EXPECT_TRUE(fs::is_empty(root / "active"));

    EXPECT_EQ(statusField(root, "good-a", "state"), "done");
    EXPECT_EQ(statusField(root, "good-b", "state"), "done");
    EXPECT_EQ(statusField(root, "bad", "state"), "rejected");
    EXPECT_NE(statusField(root, "bad", "detail").find("backend"),
              std::string::npos);

    const std::string result = fileBytes(root / "results" /
                                         "good-a.result");
    EXPECT_NE(result.find("1/1 tasks succeeded"), std::string::npos)
        << result;
}

TEST(Service, FairShareAdmissionRotatesAcrossTenants)
{
    const fs::path root = testDir("fairshare");
    runner::ServiceConfig config = fastConfig(root);
    // One slot: the admission ORDER is fully observable through the
    // per-campaign admission stamps.
    config.maxActiveCampaigns = 1;
    config.maxCampaigns = 3;
    runner::CampaignService service(config);

    // Alice submits a burst of two before Bob's single campaign ever
    // arrives; round-robin must still interleave Bob between them.
    submit(root, "alice-1", kSmallSubmission);
    submit(root, "alice-2", kSmallSubmission);
    submit(root, "bob-1",
           R"({"tenant": "bob", "episodes": 10, "budget": 8})");

    const runner::ServiceReport report = service.serve();
    EXPECT_EQ(report.completed, 3u);

    EXPECT_EQ(statusField(root, "alice-1", "admitted"), "0");
    EXPECT_EQ(statusField(root, "bob-1", "admitted"), "1")
        << "bob's single campaign must not wait out alice's burst";
    EXPECT_EQ(statusField(root, "alice-2", "admitted"), "2");
}

TEST(Service, DuplicateIdIsRejectedAfterCompletion)
{
    const fs::path root = testDir("duplicate");
    runner::ServiceConfig config = fastConfig(root);
    config.maxCampaigns = 1;
    {
        runner::CampaignService service(config);
        submit(root, "exp", kSmallSubmission);
        EXPECT_EQ(service.serve().completed, 1u);
    }
    // Same id again: a completed campaign's result must never be
    // silently recomputed/overwritten. A fresh campaign rides along so
    // the bounded serve() has something to complete and exit on.
    {
        runner::CampaignService service(config);
        submit(root, "exp", kSmallSubmission);
        submit(root, "exp2", kSmallSubmission);
        const runner::ServiceReport report = service.serve();
        EXPECT_EQ(report.completed, 1u);
        EXPECT_EQ(report.rejected, 1u);
        EXPECT_NE(statusField(root, "exp", "detail").find("duplicate"),
                  std::string::npos);
        EXPECT_TRUE(fs::exists(root / "results" / "exp2.result"));
    }
}

TEST(Service, DrainInterruptsThenRestartResumesByteIdentical)
{
    // Golden: the same submission served uninterrupted in a fresh root.
    const fs::path goldenRoot = testDir("drain_golden");
    const char *submission =
        R"({"tenant": "alice", "density": "low", "episodes": 10,)"
        R"( "budget": 16, "threads": 2})";
    {
        runner::ServiceConfig config = fastConfig(goldenRoot);
        config.maxCampaigns = 1;
        runner::CampaignService service(config);
        submit(goldenRoot, "exp", submission);
        ASSERT_EQ(service.serve().completed, 1u);
    }
    const std::string golden =
        fileBytes(goldenRoot / "results" / "exp.result");
    ASSERT_FALSE(golden.empty());

    // Drained run: cancel the stop source once the campaign has
    // journaled progress (or complete it, on a fast machine - the test
    // accepts either race outcome and verifies the invariant that
    // matters: the final result bytes match the golden run).
    const fs::path root = testDir("drain");
    util::CancelSource stop;
    runner::ServiceConfig config = fastConfig(root);
    config.stop = stop.token();
    runner::ServiceReport drained;
    runner::CampaignService service(config);
    std::thread server(
        [&] { drained = service.serve(); });

    submit(root, "exp", submission);
    const fs::path journal = root / "work" / "exp" / "exp" /
                             "journal.csv";
    for (int spins = 0; spins < 20000 && !fs::exists(journal); ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stop.cancel();
    server.join();

    if (drained.interrupted == 1u) {
        // The campaign was caught mid-flight: it must still be in
        // active/ (resumable), with no result file yet.
        EXPECT_TRUE(fs::exists(root / "active" / "exp.json"));
        EXPECT_EQ(statusField(root, "exp", "state"), "interrupted");
        EXPECT_FALSE(fs::exists(root / "results" / "exp.result"));

        // Restart (no stop token): recovery picks the campaign out of
        // active/ and finishes it from its journal.
        runner::ServiceConfig restartConfig = fastConfig(root);
        restartConfig.maxCampaigns = 1;
        runner::CampaignService restarted(restartConfig);
        const runner::ServiceReport resumed = restarted.serve();
        EXPECT_EQ(resumed.admitted, 1u);
        EXPECT_EQ(resumed.completed, 1u);
    } else {
        // Too fast to interrupt - it completed before the drain.
        EXPECT_EQ(drained.completed, 1u);
    }

    EXPECT_EQ(fileBytes(root / "results" / "exp.result"), golden)
        << "resumed result must be byte-identical to an uninterrupted "
           "run";
    EXPECT_TRUE(fs::exists(root / "done" / "exp.json"));
}
