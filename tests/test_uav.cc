/**
 * @file
 * Tests for the UAV physics substrate: propulsion, the F-1 model and the
 * mission model, including the paper's calibrated knee points (46 Hz for
 * the nano-UAV, 27 Hz for the DJI Spark).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "uav/f1_model.h"
#include "uav/mission.h"
#include "uav/propulsion.h"
#include "uav/uav_spec.h"

namespace uav = autopilot::uav;

// --------------------------------------------------------------- spec ----

TEST(UavSpec, TableIVBasics)
{
    const uav::UavSpec mini = uav::ascTecPelican();
    const uav::UavSpec micro = uav::djiSpark();
    const uav::UavSpec nano = uav::zhangNano();
    EXPECT_EQ(mini.uavClass, uav::UavClass::Mini);
    EXPECT_EQ(micro.uavClass, uav::UavClass::Micro);
    EXPECT_EQ(nano.uavClass, uav::UavClass::Nano);
    EXPECT_DOUBLE_EQ(mini.batteryMah, 6250.0);
    EXPECT_DOUBLE_EQ(micro.batteryMah, 1480.0);
    EXPECT_DOUBLE_EQ(nano.batteryMah, 500.0);
    EXPECT_DOUBLE_EQ(mini.baseMassGrams, 1650.0);
    EXPECT_DOUBLE_EQ(micro.baseMassGrams, 300.0);
    EXPECT_DOUBLE_EQ(nano.baseMassGrams, 50.0);
}

TEST(UavSpec, BatteryEnergyConversion)
{
    const uav::UavSpec nano = uav::zhangNano();
    // 500 mAh * 7.4 V = 3.7 Wh = 13320 J, derated by the usable
    // fraction.
    EXPECT_NEAR(nano.batteryEnergyJ(),
                13320.0 * nano.usableBatteryFraction, 1e-6);
    EXPECT_GT(nano.usableBatteryFraction, 0.5);
    EXPECT_LE(nano.usableBatteryFraction, 1.0);
}

TEST(UavSpec, AllUavsValidate)
{
    for (const uav::UavSpec &spec : uav::allUavs())
        spec.validate(); // Must not exit.
    SUCCEED();
}

TEST(UavSpec, ClassNames)
{
    EXPECT_EQ(uav::uavClassName(uav::UavClass::Mini), "mini");
    EXPECT_EQ(uav::uavClassName(uav::UavClass::Micro), "micro");
    EXPECT_EQ(uav::uavClassName(uav::UavClass::Nano), "nano");
}

// --------------------------------------------------------- propulsion ----

TEST(Propulsion, AccelerationFallsWithMass)
{
    const uav::UavSpec nano = uav::zhangNano();
    const double light = uav::maxAccelerationMps2(nano, 60.0);
    const double heavy = uav::maxAccelerationMps2(nano, 120.0);
    EXPECT_GT(light, heavy);
    EXPECT_GT(heavy, 0.0);
}

TEST(Propulsion, CannotHoverBeyondThrust)
{
    const uav::UavSpec nano = uav::zhangNano();
    // 1.58 N of thrust supports at most ~161 g.
    EXPECT_TRUE(uav::canHover(nano, 120.0));
    EXPECT_FALSE(uav::canHover(nano, 200.0));
    EXPECT_DOUBLE_EQ(uav::maxAccelerationMps2(nano, 200.0), 0.0);
}

TEST(Propulsion, ThrustToWeightFormula)
{
    const uav::UavSpec nano = uav::zhangNano();
    const double mass_g = 74.0;
    const double weight = mass_g * 1e-3 * uav::gravity;
    const double tw = nano.maxThrustNewtons / weight;
    const double expected = uav::gravity * std::sqrt(tw * tw - 1.0);
    EXPECT_NEAR(uav::maxAccelerationMps2(nano, mass_g), expected, 1e-9);
}

TEST(Propulsion, InducedVelocityFallsWithSpeed)
{
    const uav::UavSpec spark = uav::djiSpark();
    const double vh = uav::hoverInducedVelocityMps(spark, 330.0);
    const double vi_hover = uav::inducedVelocityMps(spark, 330.0, 0.0);
    const double vi_fast = uav::inducedVelocityMps(spark, 330.0, 10.0);
    EXPECT_NEAR(vi_hover, vh, 1e-6);
    EXPECT_LT(vi_fast, vi_hover);
}

TEST(Propulsion, InducedVelocitySatisfiesMomentumRelation)
{
    const uav::UavSpec nano = uav::zhangNano();
    const double mass = 74.0;
    const double v = 6.0;
    const double vh = uav::hoverInducedVelocityMps(nano, mass);
    const double vi = uav::inducedVelocityMps(nano, mass, v);
    // v_i = v_h^2 / sqrt(v^2 + v_i^2).
    EXPECT_NEAR(vi, vh * vh / std::sqrt(v * v + vi * vi), 1e-6);
}

TEST(Propulsion, FlyingFasterIsMoreEnergyEfficientPerMeter)
{
    // The heart of the paper's Eq. 4 argument: induced power falls with
    // speed, so J/m improves as the UAV flies faster (until drag bites).
    const uav::UavSpec nano = uav::zhangNano();
    const double mass = 74.0;
    const double slow = uav::rotorPowerW(nano, mass, 3.0) / 3.0;
    const double fast = uav::rotorPowerW(nano, mass, 10.0) / 10.0;
    EXPECT_LT(fast, slow);
}

TEST(Propulsion, HeavierVehicleBurnsMorePower)
{
    const uav::UavSpec mini = uav::ascTecPelican();
    EXPECT_GT(uav::rotorPowerW(mini, 1800.0, 8.0),
              uav::rotorPowerW(mini, 1700.0, 8.0));
}

TEST(Propulsion, HoverPowerPlausibleForSpark)
{
    // Real DJI Spark averages ~60 W in flight (16.87 Wh / ~16 min).
    const uav::UavSpec spark = uav::djiSpark();
    const double hover = uav::rotorPowerW(spark, 330.0, 0.0);
    EXPECT_GT(hover, 20.0);
    EXPECT_LT(hover, 90.0);
}

// ----------------------------------------------------------- F1 model ----

TEST(F1Model, PaperKneePoints)
{
    // Section V-C: ~46 Hz for the nano-UAV, ~27 Hz for the DJI Spark at
    // AutoPilot-class compute payloads.
    const uav::F1Model nano(uav::zhangNano(), 23.8);
    const uav::F1Model spark(uav::djiSpark(), 28.2);
    EXPECT_NEAR(nano.kneeThroughputHz(), 46.0, 2.0);
    EXPECT_NEAR(spark.kneeThroughputHz(), 27.0, 2.0);
}

TEST(F1Model, RooflineShape)
{
    const uav::F1Model f1(uav::zhangNano(), 24.0);
    const double ceiling = f1.velocityCeilingMps();
    const double knee = f1.kneeThroughputHz();
    // Linear region: velocity proportional to throughput.
    EXPECT_NEAR(f1.safeVelocityMps(knee / 2.0), ceiling / 2.0, 1e-9);
    // Flat region: more throughput buys nothing.
    EXPECT_DOUBLE_EQ(f1.safeVelocityMps(knee * 2.0), ceiling);
    EXPECT_DOUBLE_EQ(f1.safeVelocityMps(0.0), 0.0);
}

TEST(F1Model, PayloadLowersCeiling)
{
    const uav::F1Model light(uav::zhangNano(), 24.0);
    const uav::F1Model heavy(uav::zhangNano(), 65.0);
    EXPECT_GT(light.velocityCeilingMps(), heavy.velocityCeilingMps());
    EXPECT_GT(light.kneeThroughputHz(), heavy.kneeThroughputHz());
}

TEST(F1Model, ImpossiblePayloadZeroesCeiling)
{
    const uav::F1Model overloaded(uav::zhangNano(), 500.0);
    EXPECT_DOUBLE_EQ(overloaded.velocityCeilingMps(), 0.0);
}

TEST(F1Model, ActionThroughputIsPipelineMinimum)
{
    const uav::F1Model f1(uav::zhangNano(), 24.0);
    EXPECT_DOUBLE_EQ(f1.actionThroughputHz(100.0, 30.0), 30.0);
    EXPECT_DOUBLE_EQ(f1.actionThroughputHz(20.0, 60.0), 20.0);
}

TEST(F1Model, ClassifyAgainstKnee)
{
    const uav::F1Model f1(uav::zhangNano(), 24.0);
    const double knee = f1.kneeThroughputHz();
    EXPECT_EQ(f1.classify(knee * 0.5),
              uav::Provisioning::UnderProvisioned);
    EXPECT_EQ(f1.classify(knee), uav::Provisioning::Balanced);
    EXPECT_EQ(f1.classify(knee * 2.0),
              uav::Provisioning::OverProvisioned);
}

TEST(F1Model, CurveSamplingMonotone)
{
    const uav::F1Model f1(uav::djiSpark(), 30.0);
    const auto curve = f1.curve(100.0, 21);
    ASSERT_EQ(curve.size(), 21u);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i].safeVelocityMps,
                  curve[i - 1].safeVelocityMps);
}

TEST(F1Model, StructuralLimitCaps)
{
    uav::UavSpec nano = uav::zhangNano();
    nano.structuralMaxMps = 5.0;
    const uav::F1Model f1(nano, 24.0);
    EXPECT_DOUBLE_EQ(f1.velocityCeilingMps(), 5.0);
}

// ------------------------------------------------------------ mission ----

TEST(Mission, HeavierComputeMeansFewerMissions)
{
    const uav::MissionModel model(uav::zhangNano());
    const auto light = model.evaluate(24.0, 0.8, 60.0, 60.0);
    const auto heavy = model.evaluate(65.0, 0.8, 60.0, 60.0);
    ASSERT_TRUE(light.feasible);
    ASSERT_TRUE(heavy.feasible);
    EXPECT_GT(light.numMissions, heavy.numMissions);
}

TEST(Mission, HungrierComputeMeansFewerMissions)
{
    const uav::MissionModel model(uav::zhangNano());
    const auto frugal = model.evaluate(24.0, 0.8, 60.0, 60.0);
    const auto hungry = model.evaluate(24.0, 8.0, 60.0, 60.0);
    EXPECT_GT(frugal.numMissions, hungry.numMissions);
}

TEST(Mission, SlowComputeLowersVelocityAndMissions)
{
    const uav::MissionModel model(uav::zhangNano());
    const auto fast = model.evaluate(24.0, 0.8, 46.0, 60.0);
    const auto slow = model.evaluate(24.0, 0.8, 10.0, 60.0);
    EXPECT_GT(fast.safeVelocityMps, slow.safeVelocityMps);
    EXPECT_GT(fast.numMissions, slow.numMissions);
    EXPECT_EQ(slow.provisioning, uav::Provisioning::UnderProvisioned);
}

TEST(Mission, InfeasibleWhenOverloaded)
{
    const uav::MissionModel model(uav::zhangNano());
    const auto result = model.evaluate(300.0, 1.0, 60.0, 60.0);
    EXPECT_FALSE(result.feasible);
    EXPECT_DOUBLE_EQ(result.numMissions, 0.0);
}

TEST(Mission, EnergyAccounting)
{
    const uav::MissionModel model(uav::zhangNano());
    const auto result = model.evaluate(24.0, 0.8, 60.0, 60.0);
    ASSERT_TRUE(result.feasible);
    EXPECT_GT(result.missionEnergyJ, 0.0);
    EXPECT_NEAR(result.numMissions,
                uav::zhangNano().batteryEnergyJ() / result.missionEnergyJ,
                1e-9);
    EXPECT_GT(result.missionTimeS,
              uav::zhangNano().missionDistanceM /
                  result.safeVelocityMps - 1e-9);
}

TEST(Mission, SensorSelectionAvoidsSensorBound)
{
    const uav::MissionModel model(uav::zhangNano());
    // Knee ~46 Hz: a 30 FPS sensor would bound the pipeline, so the
    // selector must pick 60 FPS (Section V-C).
    EXPECT_EQ(model.selectSensorFps(46.0), 60);
    EXPECT_EQ(model.selectSensorFps(25.0), 30);
    // Nothing suffices -> fastest available.
    EXPECT_EQ(model.selectSensorFps(500.0), 60);
}

TEST(F1ModelDeath, RejectsNegativePayload)
{
    EXPECT_EXIT(uav::F1Model(uav::zhangNano(), -1.0),
                ::testing::ExitedWithCode(1), "negative");
}

TEST(F1ModelDeath, CurveRejectsBadArguments)
{
    const uav::F1Model f1(uav::zhangNano(), 24.0);
    EXPECT_EXIT(f1.curve(0.0, 10), ::testing::ExitedWithCode(1),
                "curve");
    EXPECT_EXIT(f1.curve(100.0, 1), ::testing::ExitedWithCode(1),
                "curve");
}

TEST(PropulsionDeath, TotalMassBelowBaseRejected)
{
    EXPECT_EXIT(uav::rotorPowerW(uav::zhangNano(), 10.0, 0.0),
                ::testing::ExitedWithCode(1), "below base");
}

TEST(Propulsion, ParasiteDragGrowsCubically)
{
    const uav::UavSpec mini = uav::ascTecPelican();
    const double mass = 1700.0;
    // Subtract the induced component to isolate the drag term.
    auto parasite = [&](double v) {
        const double vi = uav::inducedVelocityMps(mini, mass, v);
        const double induced = mass * 1e-3 * uav::gravity * vi /
                               mini.propulsiveEfficiency;
        return uav::rotorPowerW(mini, mass, v) - induced;
    };
    EXPECT_NEAR(parasite(12.0) / parasite(6.0), 8.0, 0.2);
}

TEST(Mission, SensorBoundPipelineCapsVelocity)
{
    const uav::MissionModel model(uav::zhangNano());
    const auto bound = model.evaluate(24.0, 0.8, 200.0, 30.0);
    EXPECT_DOUBLE_EQ(bound.actionThroughputHz, 30.0);
}
