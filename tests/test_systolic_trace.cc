/**
 * @file
 * Tests for the fold-granular trace generator, including the property
 * that trace totals match the analytic traffic model exactly.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "nn/e2e_template.h"
#include "systolic/cycle_engine.h"
#include "systolic/trace.h"

namespace sys = autopilot::systolic;
namespace nn = autopilot::nn;

namespace
{

sys::AcceleratorConfig
makeConfig(int rows, int cols, int sram_kb, sys::Dataflow dataflow)
{
    sys::AcceleratorConfig config;
    config.peRows = rows;
    config.peCols = cols;
    config.ifmapSramKb = sram_kb;
    config.filterSramKb = sram_kb;
    config.ofmapSramKb = sram_kb;
    config.dataflow = dataflow;
    return config;
}

} // namespace

TEST(Trace, EventKindNames)
{
    EXPECT_EQ(sys::traceEventKindName(sys::TraceEventKind::DramFetch),
              "dram_fetch");
    EXPECT_EQ(
        sys::traceEventKindName(sys::TraceEventKind::DramWriteback),
        "dram_writeback");
    EXPECT_EQ(sys::traceEventKindName(sys::TraceEventKind::SramRead),
              "sram_read");
    EXPECT_EQ(sys::traceEventKindName(sys::TraceEventKind::SramWrite),
              "sram_write");
}

class TraceConservation
    : public ::testing::TestWithParam<sys::Dataflow>
{
};

TEST_P(TraceConservation, TotalsMatchTrafficModel)
{
    const auto config = makeConfig(16, 32, 128, GetParam());
    const nn::Layer layers[] = {
        nn::conv2d("conv", 64, 64, 16, 3, 2, 48),
        nn::dense("fc", 4096, 512),
    };
    for (const nn::Layer &layer : layers) {
        const auto schedule = sys::scheduleGemm(layer.gemm(), config);
        const auto traffic =
            sys::computeTraffic(layer, schedule, config);
        const sys::LayerTrace trace = sys::traceLayer(layer, config);

        EXPECT_EQ(trace.totalOf(sys::TraceEventKind::DramFetch) +
                      trace.totalOf(sys::TraceEventKind::DramWriteback),
                  traffic.totalDramBytes())
            << layer.name;
        EXPECT_EQ(trace.totalOf(sys::TraceEventKind::SramRead),
                  traffic.ifmapSramReads + traffic.filterSramReads +
                      traffic.psumSramReads)
            << layer.name;
        EXPECT_EQ(trace.totalOf(sys::TraceEventKind::SramWrite),
                  traffic.ofmapSramWrites + traffic.psumSramWrites)
            << layer.name;
    }
}

TEST_P(TraceConservation, CyclesMonotoneWithinTimeline)
{
    const auto config = makeConfig(16, 16, 64, GetParam());
    const nn::Layer conv = nn::conv2d("c", 64, 64, 8, 3, 2, 32);
    const sys::LayerTrace trace = sys::traceLayer(conv, config);
    ASSERT_FALSE(trace.events.empty());
    // Fold indices are non-decreasing and start cycles non-negative.
    std::int64_t prev_fold = 0;
    for (const sys::TraceEvent &event : trace.events) {
        EXPECT_GE(event.foldIndex, prev_fold);
        EXPECT_GE(event.startCycle, 0);
        EXPECT_GE(event.amount, 0);
        prev_fold = event.foldIndex;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Dataflows, TraceConservation,
    ::testing::Values(sys::Dataflow::WeightStationary,
                      sys::Dataflow::OutputStationary,
                      sys::Dataflow::InputStationary));

TEST(Trace, LastEventEndsAtCycleEngineTotal)
{
    // The trace's timeline is the CycleEngine timeline: the final event
    // must not start after the engine's total cycle count.
    const auto config =
        makeConfig(32, 32, 256, sys::Dataflow::WeightStationary);
    const nn::Layer fc = nn::dense("fc", 12288, 2048);
    const sys::CycleEngine engine(config);
    const auto result = engine.runLayer(fc);
    const sys::LayerTrace trace = sys::traceLayer(fc, config);
    for (const sys::TraceEvent &event : trace.events)
        EXPECT_LE(event.startCycle, result.totalCycles);
}

TEST(Trace, CsvOutputWellFormed)
{
    const auto config =
        makeConfig(8, 8, 32, sys::Dataflow::WeightStationary);
    const nn::Layer fc = nn::dense("fc", 64, 16);
    const sys::LayerTrace trace = sys::traceLayer(fc, config);
    std::ostringstream os;
    trace.writeCsv(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("layer,fold,cycle,kind,amount"),
              std::string::npos);
    EXPECT_NE(text.find("fc,"), std::string::npos);
    // One header plus one line per event.
    const auto lines =
        std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(static_cast<std::size_t>(lines),
              trace.events.size() + 1);
}

TEST(Trace, FullPolicyModelTraceable)
{
    const auto config =
        makeConfig(32, 32, 256, sys::Dataflow::WeightStationary);
    const nn::Model model = nn::buildE2EModel({5, 32});
    std::int64_t dram_total = 0;
    for (const nn::Layer &layer : model.layers()) {
        const sys::LayerTrace trace = sys::traceLayer(layer, config);
        dram_total +=
            trace.totalOf(sys::TraceEventKind::DramFetch) +
            trace.totalOf(sys::TraceEventKind::DramWriteback);
    }
    const sys::CycleEngine engine(config);
    const auto run = engine.run(model);
    EXPECT_EQ(dram_total, run.traffic.totalDramBytes());
}
