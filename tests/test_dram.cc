/**
 * @file
 * Bank-level DRAM subsystem suite:
 *
 *  - BankModel classifies row hits / misses / conflicts with gem5-style
 *    command timing, honours the Closed row policy (every access a
 *    miss) and refresh (rows closed, channel stalled every tREFI).
 *  - ChannelTimeline interleaves background generators with the NPU
 *    stream deterministically; locality properties hold (linear streams
 *    hit rows, random streams conflict, latency is monotone in both
 *    randomness and background load).
 *  - DramCycleEngine with an empty generator set is bit-identical to
 *    systolic::CycleEngine - the sidecar backward-compatibility
 *    contract - and slows down under background traffic.
 *  - DramBackend: disabled spec reproduces CycleBackend field for
 *    field; enabled spec tags BankAccurate fidelity + the channel key,
 *    bills DRAM power from command counts (never the flat surcharge on
 *    top - the double-charging fix), and stays byte-identical across
 *    worker-thread counts, alone and as the tiered verify tier.
 *  - Degenerate parameter sets are diagnosed in words (fatal with
 *    infeasibleReason), never simulated into NaN or infinite latency.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "airlearning/trainer.h"
#include "dram/bank_model.h"
#include "dram/channel.h"
#include "dram/config.h"
#include "dram/engine.h"
#include "dse/eval_backend.h"
#include "dse/evaluator.h"
#include "nn/e2e_template.h"
#include "power/dram_model.h"
#include "systolic/cycle_engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace al = autopilot::airlearning;
namespace dram = autopilot::dram;
namespace dse = autopilot::dse;
namespace nn = autopilot::nn;
namespace pw = autopilot::power;
namespace sys = autopilot::systolic;
namespace util = autopilot::util;

namespace
{

/** Timing with distinct command latencies so each class is visible. */
dram::DramTiming
labTiming()
{
    dram::DramTiming timing;
    timing.banks = 4;
    timing.rowBytes = 1024;
    timing.burstBytes = 64;
    timing.tCasCycles = 3;
    timing.tRcdCycles = 5;
    timing.tRpCycles = 7;
    timing.tRefiCycles = 100000; // Effectively off for the unit tests.
    timing.tRfcCycles = 36;
    return timing;
}

const al::PolicyDatabase &
sharedDatabase()
{
    static const al::PolicyDatabase db = [] {
        al::TrainerConfig config;
        config.validationEpisodes = 40;
        const al::Trainer trainer(config);
        al::PolicyDatabase built;
        trainer.trainAll(nn::PolicySpace(), al::ObstacleDensity::Dense,
                         built);
        return built;
    }();
    return db;
}

dse::BackendContext
dramContext(const dram::DramSpec &spec = {})
{
    return {&sharedDatabase(), al::ObstacleDensity::Dense, {}, spec};
}

std::vector<dse::Encoding>
distinctEncodings(std::size_t count, std::uint64_t seed)
{
    const dse::DesignSpace space;
    util::Rng rng(seed);
    std::vector<dse::Encoding> out;
    std::set<dse::Encoding> seen;
    while (out.size() < count) {
        const dse::Encoding encoding = space.randomEncoding(rng);
        if (seen.insert(encoding).second)
            out.push_back(encoding);
    }
    return out;
}

/** One-generator spec over the lab timing. */
dram::DramSpec
oneStreamSpec(double bytesPerSec, double randomness,
              dram::DramTiming timing = labTiming())
{
    dram::DramSpec spec;
    spec.timing = timing;
    dram::TrafficGeneratorSpec generator;
    generator.name = "bg";
    generator.bytesPerSec = bytesPerSec;
    generator.randomness = randomness;
    generator.addressBase = 1ll << 30;
    spec.generators = {generator};
    return spec;
}

} // namespace

// ------------------------------------------------------------ bank model ----

TEST(BankModel, ClassifiesHitMissConflictWithCommandTiming)
{
    const dram::DramTiming timing = labTiming();
    dram::BankModel banks(timing);
    dram::ChannelStats stats;
    const std::int64_t bpc = 32; // 64-byte burst -> 2 transfer cycles.
    const std::int64_t transfer = timing.burstBytes / bpc;

    // Cold bank: miss = tRCD + tCAS (+ activate).
    std::int64_t done =
        banks.service(0, timing.burstBytes, 0, bpc, stats);
    EXPECT_EQ(done, timing.tRcdCycles + timing.tCasCycles + transfer);
    EXPECT_EQ(stats.rowMisses, 1);
    EXPECT_EQ(stats.activates, 1);

    // Same row, next column: hit = tCAS only.
    done = banks.service(timing.burstBytes, timing.burstBytes, done, bpc,
                         stats);
    EXPECT_EQ(stats.rowHits, 1);
    EXPECT_EQ(stats.precharges, 0);

    // Same bank, different row: conflict = tRP + tRCD + tCAS.
    const std::int64_t otherRow =
        timing.rowBytes * timing.banks; // row 1, bank 0.
    const std::int64_t start = done;
    done = banks.service(otherRow, timing.burstBytes, start, bpc, stats);
    EXPECT_EQ(done, start + timing.tRpCycles + timing.tRcdCycles +
                        timing.tCasCycles + transfer);
    EXPECT_EQ(stats.rowConflicts, 1);
    EXPECT_EQ(stats.precharges, 1);
    EXPECT_EQ(stats.activates, 2);
    EXPECT_EQ(stats.accesses(), 3);
    EXPECT_DOUBLE_EQ(stats.rowHitRate(), 1.0 / 3.0);
}

TEST(BankModel, ClosedPolicyNeverHitsOrConflicts)
{
    dram::DramTiming timing = labTiming();
    timing.rowPolicy = dram::RowPolicy::Closed;
    dram::BankModel banks(timing);
    dram::ChannelStats stats;
    std::int64_t cycle = 0;
    for (int i = 0; i < 16; ++i) {
        cycle = banks.service(i * timing.burstBytes, timing.burstBytes,
                              cycle, 32, stats);
    }
    EXPECT_EQ(stats.rowMisses, 16);
    EXPECT_EQ(stats.rowHits, 0);
    EXPECT_EQ(stats.rowConflicts, 0);
    EXPECT_EQ(stats.precharges, 16); // Auto-precharge every access.
}

TEST(BankModel, RefreshClosesRowsAndStallsTheChannel)
{
    dram::DramTiming timing = labTiming();
    timing.tRefiCycles = 50;
    timing.tRfcCycles = 20;
    dram::BankModel banks(timing);
    dram::ChannelStats stats;

    const std::int64_t first =
        banks.service(0, timing.burstBytes, 0, 32, stats);
    EXPECT_EQ(stats.rowMisses, 1);

    // Next access lands past tREFI: one refresh is paid, the row it
    // opened is closed again, and the access starts no earlier than the
    // refresh stall's end - so it re-misses instead of hitting.
    const std::int64_t afterRefresh =
        banks.service(0, timing.burstBytes, timing.tRefiCycles, 32,
                      stats);
    EXPECT_EQ(stats.refreshes, 1);
    EXPECT_EQ(stats.rowMisses, 2);
    EXPECT_EQ(stats.rowHits, 0);
    EXPECT_GE(afterRefresh, timing.tRefiCycles + timing.tRfcCycles);
    EXPECT_GT(afterRefresh, first);
}

// ------------------------------------------------------------- config ----

TEST(DramConfig, DefaultSpecIsDisabledAndInert)
{
    const dram::DramSpec spec;
    EXPECT_FALSE(spec.enabled());
    EXPECT_DOUBLE_EQ(spec.backgroundBytesPerSec(), 0.0);
    EXPECT_EQ(spec.tag(), "-");
    EXPECT_TRUE(spec.infeasibleReason().empty());
}

TEST(DramConfig, UavSpecShapesCameraAndHostStreams)
{
    const dram::DramSpec spec =
        dram::uavDramSpec(labTiming(), 2.0e9, 1.0e9);
    ASSERT_EQ(spec.generators.size(), 2u);
    EXPECT_EQ(spec.generators[0].name, "camera");
    EXPECT_DOUBLE_EQ(spec.generators[0].randomness, 0.0);
    EXPECT_TRUE(spec.generators[0].write);
    EXPECT_EQ(spec.generators[1].name, "host");
    EXPECT_DOUBLE_EQ(spec.generators[1].randomness, 1.0);
    EXPECT_TRUE(spec.enabled());
    EXPECT_DOUBLE_EQ(spec.backgroundBytesPerSec(), 3.0e9);

    // Zero-rate streams are omitted; (timing, 0, 0) degenerates to a
    // disabled spec rather than two inert generators.
    const dram::DramSpec quiet = dram::uavDramSpec(labTiming(), 0, 0);
    EXPECT_TRUE(quiet.generators.empty());
    EXPECT_FALSE(quiet.enabled());
    EXPECT_EQ(quiet.tag(), "-");
}

TEST(DramConfig, TagAndFingerprintTrackEveryResultAffectingField)
{
    const dram::DramSpec base = oneStreamSpec(1.0e9, 0.5);
    dram::DramSpec other = base;
    other.timing.tCasCycles += 1;
    EXPECT_NE(base.tag(), other.tag());
    EXPECT_NE(base.fingerprintText(), other.fingerprintText());

    other = base;
    other.generators[0].seed ^= 1;
    EXPECT_NE(base.tag(), other.tag());

    other = base;
    other.timing.rowPolicy = dram::RowPolicy::Closed;
    EXPECT_NE(base.tag(), other.tag());
    EXPECT_NE(base.tag(), "-");
}

TEST(DramConfig, ParseDramTimingAcceptsBothArities)
{
    dram::DramTiming timing;
    std::string error;
    ASSERT_TRUE(dram::parseDramTiming("2:6:9", timing, error)) << error;
    EXPECT_EQ(timing.tCasCycles, 2);
    EXPECT_EQ(timing.tRcdCycles, 6);
    EXPECT_EQ(timing.tRpCycles, 9);

    ASSERT_TRUE(dram::parseDramTiming("3:4:5:2000:40", timing, error))
        << error;
    EXPECT_EQ(timing.tRefiCycles, 2000);
    EXPECT_EQ(timing.tRfcCycles, 40);

    EXPECT_FALSE(dram::parseDramTiming("3:4", timing, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(dram::parseDramTiming("a:b:c", timing, error));
    EXPECT_FALSE(dram::parseDramTiming("", timing, error));
}

TEST(DramConfig, InfeasibleReasonDiagnosesDegenerateParameters)
{
    // Every degenerate axis gets words, not NaN: the diagnosis names
    // the offending field.
    dram::DramSpec spec = oneStreamSpec(1.0e9, 0.0);
    spec.timing.banks = 0;
    EXPECT_NE(spec.infeasibleReason().find("banks"), std::string::npos)
        << spec.infeasibleReason();

    spec = oneStreamSpec(1.0e9, 0.0);
    spec.timing.tRpCycles = 0;
    EXPECT_FALSE(spec.infeasibleReason().empty());

    spec = oneStreamSpec(1.0e9, 0.0);
    spec.timing.tRcdCycles = -1;
    EXPECT_FALSE(spec.infeasibleReason().empty());

    // Refresh interval inside the refresh stall: the channel would
    // spend all its time refreshing.
    spec = oneStreamSpec(1.0e9, 0.0);
    spec.timing.tRefiCycles = 10;
    spec.timing.tRfcCycles = 36;
    EXPECT_NE(spec.infeasibleReason().find("refresh"),
              std::string::npos)
        << spec.infeasibleReason();

    spec = oneStreamSpec(1.0e9, 1.5); // Randomness out of [0, 1].
    EXPECT_NE(spec.infeasibleReason().find("randomness"),
              std::string::npos)
        << spec.infeasibleReason();

    spec = oneStreamSpec(1.0e9, 0.0);
    spec.generators[0].name = "Bad Name!";
    EXPECT_NE(spec.infeasibleReason().find("name"), std::string::npos)
        << spec.infeasibleReason();
}

TEST(DramConfigDeath, ValidateIsFatalWithTheDiagnosis)
{
    dram::DramSpec spec = oneStreamSpec(1.0e9, 0.0);
    spec.timing.banks = 0;
    EXPECT_EXIT(spec.validate(), ::testing::ExitedWithCode(1), "banks");
}

TEST(DramConfigDeath, RefreshSwallowingBurstIsDiagnosedAtConstruction)
{
    // Feasible in isolation (tREFI > tRFC) but the interval cannot
    // cover one refresh stall plus one worst-case burst at this channel
    // width - the timeline would never make progress. Diagnosed at
    // construction, before any simulation.
    dram::DramTiming timing = labTiming();
    timing.tRefiCycles = timing.tRfcCycles + 2;
    const dram::DramSpec spec = oneStreamSpec(1.0e9, 0.0, timing);
    sys::AcceleratorConfig accel;
    EXPECT_EXIT(dram::ChannelTimeline(spec, accel),
                ::testing::ExitedWithCode(1), "refresh");
    EXPECT_EXIT(dram::DramCycleEngine(accel, spec),
                ::testing::ExitedWithCode(1), "refresh");
}

// ------------------------------------------------------------- channel ----

TEST(ChannelTimeline, LinearStreamsKeepHighRowLocality)
{
    // A linear-stride generator plus the NPU's own linear walk: row
    // buffers pay off, so hits dominate across a long transfer train.
    sys::AcceleratorConfig accel;
    dram::ChannelTimeline channel(oneStreamSpec(1.0e9, 0.0), accel);
    std::int64_t cycle = 0;
    for (int i = 0; i < 200; ++i)
        cycle = channel.transfer(cycle, 4096, i % 4 == 0);
    const dram::ChannelStats &stats = channel.stats();
    EXPECT_GT(stats.accesses(), 0);
    EXPECT_GT(stats.backgroundRequests, 0);
    EXPECT_GT(stats.rowHitRate(), 0.7);
    ASSERT_EQ(stats.generators.size(), 1u);
    EXPECT_EQ(stats.generators[0].name, "bg");
    EXPECT_EQ(stats.generators[0].requests, stats.backgroundRequests);
}

TEST(ChannelTimeline, RandomnessDegradesHitRateAndCompletionMonotonically)
{
    // The row-locality knob: same injected rate, same NPU transfer
    // train; only the access pattern changes. Hit rate must fall and
    // the final completion cycle must not improve as the stream turns
    // random.
    sys::AcceleratorConfig accel;
    double previousHitRate = 1.1;
    std::int64_t previousDone = 0;
    for (const double randomness : {0.0, 0.25, 0.5, 1.0}) {
        dram::ChannelTimeline channel(oneStreamSpec(2.0e9, randomness),
                                      accel);
        std::int64_t done = 0;
        for (int i = 0; i < 150; ++i)
            done = channel.transfer(done, 4096, false);
        const double hitRate = channel.stats().rowHitRate();
        EXPECT_LT(hitRate, previousHitRate) << randomness;
        EXPECT_GE(done, previousDone) << randomness;
        previousHitRate = hitRate;
        previousDone = done;
    }
}

TEST(ChannelTimeline, BackgroundLoadDelaysTheNpuMonotonically)
{
    // Rates below the random-access service rate, so every injected
    // burst really lands (no FIFO throttling) and the delay the NPU
    // sees grows strictly with the offered load.
    sys::AcceleratorConfig accel;
    std::int64_t previousDone = 0;
    for (const double rate : {5.0e7, 2.0e8, 6.0e8}) {
        dram::ChannelTimeline channel(oneStreamSpec(rate, 1.0), accel);
        std::int64_t done = 0;
        for (int i = 0; i < 100; ++i)
            done = channel.transfer(done, 2048, false);
        EXPECT_GT(done, previousDone) << rate;
        previousDone = done;
    }
}

TEST(ChannelTimeline, ZeroByteTransferIsFree)
{
    sys::AcceleratorConfig accel;
    dram::ChannelTimeline channel(oneStreamSpec(1.0e9, 0.5), accel);
    EXPECT_EQ(channel.transfer(1234, 0, false), 1234);
    EXPECT_EQ(channel.stats().npuRequests, 0);
}

TEST(ChannelTimeline, RebuildReplaysBitIdentically)
{
    // The determinism contract behind any-thread-count byte-identity:
    // same spec + same transfer sequence -> same completions and stats,
    // no matter when the timeline was built.
    sys::AcceleratorConfig accel;
    const dram::DramSpec spec = oneStreamSpec(1.5e9, 0.5);
    auto drive = [&] {
        dram::ChannelTimeline channel(spec, accel);
        std::vector<std::int64_t> completions;
        std::int64_t cycle = 0;
        for (int i = 0; i < 64; ++i) {
            cycle = channel.transfer(cycle, 1024 + 64 * (i % 7),
                                     i % 3 == 0);
            completions.push_back(cycle);
        }
        dram::ChannelStats stats = channel.stats();
        return std::pair(completions, stats);
    };
    const auto [aDone, aStats] = drive();
    const auto [bDone, bStats] = drive();
    EXPECT_EQ(aDone, bDone);
    EXPECT_EQ(aStats.rowHits, bStats.rowHits);
    EXPECT_EQ(aStats.rowConflicts, bStats.rowConflicts);
    EXPECT_EQ(aStats.backgroundBytes, bStats.backgroundBytes);
}

// ------------------------------------------------------------- engine ----

TEST(DramCycleEngine, EmptyGeneratorsBitIdenticalToCycleEngine)
{
    // The acceptance criterion: a dram run with no generators must
    // reproduce the pure-cycle path bit for bit, layer by layer.
    sys::AcceleratorConfig accel;
    const dram::DramCycleEngine dramEngine(accel, dram::DramSpec{});
    const sys::CycleEngine cycleEngine(accel);
    for (const nn::PolicyHyperParams &params :
         {nn::PolicyHyperParams{5, 32}, nn::PolicyHyperParams{7, 48}}) {
        const nn::Model model = nn::buildE2EModel(params);
        const sys::RunResult a = dramEngine.run(model);
        const sys::RunResult b = cycleEngine.run(model);
        EXPECT_EQ(a.totalCycles, b.totalCycles);
        EXPECT_EQ(a.computeCycles, b.computeCycles);
        EXPECT_EQ(a.stallCycles, b.stallCycles);
        ASSERT_EQ(a.layers.size(), b.layers.size());
        for (std::size_t i = 0; i < a.layers.size(); ++i) {
            EXPECT_EQ(a.layers[i].totalCycles, b.layers[i].totalCycles)
                << a.layers[i].layerName;
            EXPECT_EQ(a.layers[i].stallCycles, b.layers[i].stallCycles)
                << a.layers[i].layerName;
        }
    }
    // Nothing was simulated at bank level, so no commands accumulated.
    EXPECT_EQ(dramEngine.runStats().accesses(), 0);
}

TEST(DramCycleEngine, BackgroundTrafficCostsCyclesAndCountsCommands)
{
    sys::AcceleratorConfig accel;
    const nn::Model model = nn::buildE2EModel({5, 32});
    const sys::CycleEngine quiet(accel);
    const dram::DramCycleEngine contended(
        accel, dram::uavDramSpec(dram::DramTiming{}, 2.0e9, 1.0e9));
    const sys::RunResult base = quiet.run(model);
    const sys::RunResult loaded = contended.run(model);
    EXPECT_GT(loaded.totalCycles, base.totalCycles);
    EXPECT_EQ(loaded.computeCycles, base.computeCycles);
    const dram::ChannelStats &stats = contended.runStats();
    EXPECT_GT(stats.accesses(), 0);
    EXPECT_GT(stats.npuBytes, 0);
    EXPECT_GT(stats.backgroundBytes, 0);
    EXPECT_GT(stats.activates, 0);
}

// ------------------------------------------------------------- backend ----

TEST(DramBackend, DisabledSpecBitIdenticalToCycleBackend)
{
    dse::DramBackend quiet(dramContext());
    dse::CycleBackend cycle(dramContext());
    const dse::DesignSpace space;
    for (const dse::Encoding &encoding : distinctEncodings(8, 97)) {
        const dse::DesignPoint point = space.decode(encoding);
        const dse::Evaluation a = quiet.evaluate(point);
        const dse::Evaluation b = cycle.evaluate(point);
        EXPECT_EQ(a.successRate, b.successRate);
        EXPECT_EQ(a.npuPowerW, b.npuPowerW);
        EXPECT_EQ(a.socPowerW, b.socPowerW);
        EXPECT_EQ(a.latencyMs, b.latencyMs);
        EXPECT_EQ(a.fps, b.fps);
        EXPECT_EQ(a.objectives, b.objectives);
        EXPECT_EQ(a.fidelity, dse::Fidelity::CycleAccurate);
        EXPECT_EQ(a.backend, "dram");
        EXPECT_EQ(a.dramKey, "-");
    }
}

TEST(DramBackend, EnabledSpecTagsBankFidelityAndCountsCommands)
{
    const dram::DramSpec spec =
        dram::uavDramSpec(dram::DramTiming{}, 2.0e9, 1.0e9);
    dse::DramBackend backend(dramContext(spec));
    const dse::DesignSpace space;
    const auto encodings = distinctEncodings(4, 113);
    for (const dse::Encoding &encoding : encodings) {
        const dse::Evaluation eval =
            backend.evaluate(space.decode(encoding));
        EXPECT_EQ(eval.fidelity, dse::Fidelity::BankAccurate);
        EXPECT_EQ(eval.backend, "dram");
        EXPECT_EQ(eval.dramKey, spec.tag());
        // Simulated explicitly, so never also billed as the flat
        // contention surcharge.
        EXPECT_EQ(eval.contentionBytesPerSec, 0.0);
        EXPECT_GT(eval.latencyMs, 0.0);
        EXPECT_GT(eval.socPowerW, 0.0);
    }
    EXPECT_GT(backend.rowHits() + backend.rowMisses() +
                  backend.rowConflicts(),
              0);
    EXPECT_GT(backend.activates(), 0);
    EXPECT_GT(backend.channelBytes(), 0);
}

TEST(DramBackend, BackgroundLoadShiftsLatencyMonotonically)
{
    // Host rates below the random-access service capacity (~0.9 GB/s
    // at the default timing): every injected burst really lands, so
    // the offered load translates into monotone NPU delay. Past
    // saturation the source FIFO throttles and latency plateaus
    // instead (covered by the channel-level tests).
    const dse::DesignSpace space;
    const auto encodings = distinctEncodings(4, 131);
    std::vector<double> previousLatency(encodings.size(), 0.0);
    for (const double hostRate : {0.0, 2.0e8, 5.0e8}) {
        const dram::DramSpec spec =
            dram::uavDramSpec(dram::DramTiming{}, 4.0e8, hostRate);
        dse::DramBackend backend(dramContext(spec));
        for (std::size_t i = 0; i < encodings.size(); ++i) {
            const dse::Evaluation eval =
                backend.evaluate(space.decode(encodings[i]));
            EXPECT_GE(eval.latencyMs, previousLatency[i])
                << "host rate " << hostRate;
            previousLatency[i] = eval.latencyMs;
        }
    }
}

TEST(DramBackend, NoDoubleChargeAgainstTheFlatContentionModel)
{
    // The dram backend bills DRAM power from actual command counts
    // (commandPowerMw), whose per-byte coefficient excludes row energy.
    // A high-locality run must therefore come in under the flat model's
    // 120 pJ/B estimate for the same traffic - proof the flat
    // background-bytes/s surcharge is not also being applied.
    const dram::DramSpec spec =
        dram::uavDramSpec(dram::DramTiming{}, 1.0e9, 0.0);
    dse::DramBackend backend(dramContext(spec));
    const dse::DesignSpace space;
    const dse::Evaluation eval =
        backend.evaluate(space.decode(distinctEncodings(1, 151)[0]));

    const pw::DramModel model;
    const double seconds = eval.latencyMs * 1e-3;
    const double flatMw =
        model.averagePowerMw(
            static_cast<double>(backend.channelBytes()) / seconds);
    const double commandMw = model.commandPowerMw(
        {backend.activates(), 0, backend.refreshes(),
         backend.channelBytes()},
        seconds);
    EXPECT_LT(commandMw, flatMw);
}

TEST(DramBackend, ByteIdenticalAcrossThreadCounts)
{
    const dram::DramSpec spec =
        dram::uavDramSpec(dram::DramTiming{}, 1.5e9, 0.5e9);
    const auto points = distinctEncodings(24, 167);

    auto runAt = [&](std::size_t threads) {
        std::unique_ptr<util::ThreadPool> pool;
        if (threads > 1)
            pool = std::make_unique<util::ThreadPool>(threads);
        dse::DseEvaluator evaluator(
            sharedDatabase(), al::ObstacleDensity::Dense,
            std::make_unique<dse::DramBackend>(dramContext(spec)));
        evaluator.setThreadPool(pool.get());
        const std::size_t half = points.size() / 2;
        evaluator.evaluateBatch(
            std::span<const dse::Encoding>(points.data(), half));
        evaluator.evaluateBatch(std::span<const dse::Encoding>(
            points.data() + half, points.size() - half));
        return evaluator.allEvaluations();
    };

    const auto serial = runAt(1);
    ASSERT_EQ(serial.size(), points.size());
    for (std::size_t threads : {2u, 4u}) {
        const auto parallel = runAt(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].objectives, parallel[i].objectives)
                << "position " << i;
            EXPECT_EQ(serial[i].latencyMs, parallel[i].latencyMs)
                << "position " << i;
            EXPECT_EQ(serial[i].npuPowerW, parallel[i].npuPowerW)
                << "position " << i;
            EXPECT_EQ(serial[i].dramKey, parallel[i].dramKey)
                << "position " << i;
        }
    }
}

TEST(DramBackend, ServesAsTieredVerifyTierWhenEnabled)
{
    // With a dram-enabled context the tiered backend verifies promoted
    // points at bank accuracy: promoted rows carry BankAccurate
    // fidelity and the channel tag; screened-only rows stay analytical.
    const dram::DramSpec spec =
        dram::uavDramSpec(dram::DramTiming{}, 2.0e9, 1.0e9);
    dse::TieredBackend tiered(dramContext(spec));
    const dse::DesignSpace space;
    std::vector<dse::DesignPoint> points;
    for (const dse::Encoding &encoding : distinctEncodings(32, 179))
        points.push_back(space.decode(encoding));

    std::vector<dse::Evaluation> evals(points.size());
    tiered.evaluateBatch(points, nullptr,
                         [&](std::size_t i, dse::Evaluation &&eval) {
                             evals[i] = std::move(eval);
                         });
    std::size_t bank = 0;
    for (const dse::Evaluation &eval : evals) {
        EXPECT_EQ(eval.backend, "tiered");
        if (eval.fidelity == dse::Fidelity::BankAccurate) {
            ++bank;
            EXPECT_EQ(eval.dramKey, spec.tag());
        } else {
            EXPECT_EQ(eval.fidelity, dse::Fidelity::Analytical);
            EXPECT_EQ(eval.dramKey, "-");
        }
    }
    EXPECT_GT(bank, 0u);
    EXPECT_LT(bank, points.size());
    EXPECT_EQ(tiered.promotedCount(), bank);
}

TEST(Fidelity, BankTierHasANameAndParsesBack)
{
    EXPECT_EQ(dse::fidelityName(dse::Fidelity::BankAccurate), "bank");
    dse::Fidelity fidelity = dse::Fidelity::Analytical;
    EXPECT_TRUE(dse::tryFidelityFromName("bank", fidelity));
    EXPECT_EQ(fidelity, dse::Fidelity::BankAccurate);
}

// ------------------------------------------------------- command power ----

TEST(DramCommandPower, ChargesCommandsOnTopOfTheStandbyFloor)
{
    const pw::DramModel model;
    // No commands, no bytes: just the standby floor.
    EXPECT_DOUBLE_EQ(model.commandPowerMw({}, 1.0),
                     model.backgroundMw());
    // Each term bills linearly (NEAR: subtracting the floor loses a
    // few ulps).
    const double withBytes =
        model.commandPowerMw({0, 0, 0, 1000000}, 1.0);
    EXPECT_NEAR(withBytes - model.backgroundMw(),
                model.ioPjPerByte() * 1e6 * 1e-9, 1e-12);
    const double withActivates =
        model.commandPowerMw({1000, 1000, 0, 0}, 1.0);
    EXPECT_NEAR(withActivates - model.backgroundMw(),
                model.activateEnergyPj() * 1000 * 1e-9, 1e-12);
    const double withRefreshes =
        model.commandPowerMw({0, 0, 100, 0}, 1.0);
    EXPECT_NEAR(withRefreshes - model.backgroundMw(),
                model.refreshEnergyPj() * 100 * 1e-9, 1e-12);
}

TEST(DramCommandPowerDeath, NonPositiveIntervalIsFatal)
{
    const pw::DramModel model;
    EXPECT_EXIT(model.commandPowerMw({}, 0.0),
                ::testing::ExitedWithCode(1), "seconds");
    EXPECT_EXIT(model.commandPowerMw({-1, 0, 0, 0}, 1.0),
                ::testing::ExitedWithCode(1), "counts");
}
