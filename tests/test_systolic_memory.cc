/**
 * @file
 * Tests for the scratchpad/DRAM traffic model, including the conservation
 * property that per-fold fetch/writeback shares sum exactly to the layer
 * totals (the invariant the cycle engine relies on).
 */

#include <gtest/gtest.h>

#include "nn/layer.h"
#include "systolic/memory.h"
#include "systolic/tiling.h"

namespace sys = autopilot::systolic;
namespace nn = autopilot::nn;

namespace
{

sys::AcceleratorConfig
makeConfig(int rows, int cols, int sram_kb, sys::Dataflow dataflow)
{
    sys::AcceleratorConfig config;
    config.peRows = rows;
    config.peCols = cols;
    config.ifmapSramKb = sram_kb;
    config.filterSramKb = sram_kb;
    config.ofmapSramKb = sram_kb;
    config.dataflow = dataflow;
    return config;
}

} // namespace

TEST(Residency, SmallTensorsAreResident)
{
    const nn::Layer fc = nn::dense("fc", 100, 50); // 5 KB of weights.
    const auto config =
        makeConfig(8, 8, 64, sys::Dataflow::WeightStationary);
    const sys::Residency residency = sys::analyzeResidency(fc, config);
    EXPECT_TRUE(residency.ifmapResident);
    EXPECT_TRUE(residency.filterResident);
    EXPECT_TRUE(residency.psumOnChip);
    EXPECT_EQ(residency.streamChunks, 1);
}

TEST(Residency, LargeFilterNotResident)
{
    const nn::Layer fc = nn::dense("fc", 12288, 2048); // 25 MB weights.
    const auto config =
        makeConfig(8, 8, 64, sys::Dataflow::WeightStationary);
    const sys::Residency residency = sys::analyzeResidency(fc, config);
    EXPECT_FALSE(residency.filterResident);
}

TEST(Residency, BigOfmapNeedsChunking)
{
    // Conv with a large output map and deep reduction: psums cannot all
    // stay on chip at once with a small ofmap scratchpad.
    const nn::Layer conv = nn::conv2d("c", 128, 128, 48, 3, 1, 96);
    const auto config =
        makeConfig(16, 16, 32, sys::Dataflow::WeightStationary);
    const sys::Residency residency = sys::analyzeResidency(conv, config);
    EXPECT_FALSE(residency.psumOnChip);
    EXPECT_GT(residency.streamChunks, 1);
}

TEST(Traffic, PsumNeverSpillsToDram)
{
    const nn::Layer conv = nn::conv2d("c", 128, 128, 48, 3, 1, 96);
    for (sys::Dataflow dataflow :
         {sys::Dataflow::WeightStationary,
          sys::Dataflow::OutputStationary,
          sys::Dataflow::InputStationary}) {
        const auto config = makeConfig(16, 16, 32, dataflow);
        const auto schedule = sys::scheduleGemm(conv.gemm(), config);
        const auto traffic =
            sys::computeTraffic(conv, schedule, config);
        EXPECT_EQ(traffic.psumDramBytes, 0)
            << sys::dataflowName(dataflow);
    }
}

TEST(Traffic, WeightsFetchedOncePerChunkInWs)
{
    const nn::Layer fc = nn::dense("fc", 12288, 2048);
    const auto config =
        makeConfig(16, 16, 128, sys::Dataflow::WeightStationary);
    const auto schedule = sys::scheduleGemm(fc.gemm(), config);
    const auto traffic = sys::computeTraffic(fc, schedule, config);
    // Dense layer: m = 1, so psums always fit -> single chunk -> every
    // weight crosses DRAM exactly once.
    EXPECT_EQ(traffic.filterDramBytes, fc.filterElems());
}

TEST(Traffic, ResidentFilterAvoidsRefetchInOs)
{
    const nn::Layer conv = nn::conv2d("c", 64, 64, 8, 3, 2, 16);
    const auto small =
        makeConfig(8, 8, 32, sys::Dataflow::OutputStationary);
    const auto large =
        makeConfig(8, 8, 4096, sys::Dataflow::OutputStationary);
    const auto schedule_s = sys::scheduleGemm(conv.gemm(), small);
    const auto schedule_l = sys::scheduleGemm(conv.gemm(), large);
    const auto traffic_s = sys::computeTraffic(conv, schedule_s, small);
    const auto traffic_l = sys::computeTraffic(conv, schedule_l, large);
    EXPECT_GE(traffic_s.filterDramBytes, traffic_l.filterDramBytes);
    EXPECT_EQ(traffic_l.filterDramBytes, conv.filterElems());
}

TEST(Traffic, OfmapWrittenExactlyOnce)
{
    const nn::Layer conv = nn::conv2d("c", 64, 64, 8, 3, 2, 16);
    for (sys::Dataflow dataflow :
         {sys::Dataflow::WeightStationary,
          sys::Dataflow::OutputStationary,
          sys::Dataflow::InputStationary}) {
        const auto config = makeConfig(16, 32, 64, dataflow);
        const auto schedule = sys::scheduleGemm(conv.gemm(), config);
        const auto traffic =
            sys::computeTraffic(conv, schedule, config);
        EXPECT_EQ(traffic.ofmapDramBytes, conv.ofmapElems());
        EXPECT_EQ(traffic.ofmapSramWrites,
                  conv.gemm().m * conv.gemm().n);
    }
}

TEST(Traffic, AccumulateSumsComponentwise)
{
    sys::LayerTraffic a;
    a.ifmapDramBytes = 10;
    a.filterSramReads = 5;
    sys::LayerTraffic b;
    b.ifmapDramBytes = 7;
    b.psumSramWrites = 3;
    a.accumulate(b);
    EXPECT_EQ(a.ifmapDramBytes, 17);
    EXPECT_EQ(a.filterSramReads, 5);
    EXPECT_EQ(a.psumSramWrites, 3);
}

/**
 * Conservation property: the per-fold fetch and writeback shares must sum
 * exactly to the layer's total DRAM traffic, for every dataflow, array
 * shape and scratchpad size.
 */
class TrafficConservation
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, sys::Dataflow>>
{
};

TEST_P(TrafficConservation, FoldSharesSumToTotals)
{
    const auto [rows, cols, sram_kb, dataflow] = GetParam();
    const auto config = makeConfig(rows, cols, sram_kb, dataflow);

    const nn::Layer layers[] = {
        nn::conv2d("conv_small", 32, 32, 3, 3, 2, 16),
        nn::conv2d("conv_deep", 64, 64, 48, 3, 1, 96),
        nn::dense("fc_big", 12288, 2048),
        nn::dense("fc_small", 64, 25),
    };

    for (const nn::Layer &layer : layers) {
        const auto schedule = sys::scheduleGemm(layer.gemm(), config);
        const auto traffic =
            sys::computeTraffic(layer, schedule, config);

        std::int64_t fetch_sum = 0;
        std::int64_t writeback_sum = 0;
        for (std::int64_t f = 0; f < schedule.foldCount(); ++f) {
            fetch_sum += sys::foldFetchBytes(layer, schedule, config, f);
            writeback_sum +=
                sys::foldWritebackBytes(layer, schedule, config, f);
        }
        EXPECT_EQ(fetch_sum + writeback_sum, traffic.totalDramBytes())
            << layer.name << " on " << config.name();
        EXPECT_EQ(writeback_sum, traffic.ofmapDramBytes) << layer.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Space, TrafficConservation,
    ::testing::Combine(
        ::testing::Values(8, 32, 256),
        ::testing::Values(8, 64),
        ::testing::Values(32, 256, 4096),
        ::testing::Values(sys::Dataflow::WeightStationary,
                          sys::Dataflow::OutputStationary,
                          sys::Dataflow::InputStationary)));

TEST(Traffic, WsChunkedFilterRefetchExactValue)
{
    // Construct a layer whose cross-fold psums need exactly known
    // chunking: conv with m*n psums far beyond the ofmap scratchpad.
    const nn::Layer conv = nn::conv2d("c", 66, 66, 32, 3, 1, 64);
    // GEMM: m = 64*64 = 4096, k = 288, n = 64.
    const auto config =
        makeConfig(16, 16, 64, sys::Dataflow::WeightStationary);
    const auto residency = sys::analyzeResidency(conv, config);
    // Half of 64 KiB = 32768 B; chunk rows = 32768 / (16 * 4) = 512;
    // chunks = ceil(4096 / 512) = 8.
    EXPECT_FALSE(residency.psumOnChip);
    EXPECT_EQ(residency.streamChunks, 8);

    const auto schedule = sys::scheduleGemm(conv.gemm(), config);
    const auto traffic = sys::computeTraffic(conv, schedule, config);
    // Filter not resident (288 * 64 = 18432 B > 32768? no - it IS
    // resident), so weights cross DRAM once despite the chunking.
    EXPECT_TRUE(residency.filterResident);
    EXPECT_EQ(traffic.filterDramBytes, conv.filterElems());
    // SRAM re-streams weights once per chunk.
    EXPECT_EQ(traffic.filterSramReads,
              conv.gemm().k * conv.gemm().n * 8);
}

TEST(Traffic, IsPinnedIfmapRefetchPerChunk)
{
    const nn::Layer conv = nn::conv2d("c", 66, 66, 32, 3, 1, 64);
    const auto config =
        makeConfig(16, 16, 64, sys::Dataflow::InputStationary);
    const auto residency = sys::analyzeResidency(conv, config);
    ASSERT_FALSE(residency.ifmapResident); // 139 KB > 32 KB half-cap.
    const auto schedule = sys::scheduleGemm(conv.gemm(), config);
    const auto traffic = sys::computeTraffic(conv, schedule, config);
    // IS pins the im2col footprint once per stream chunk.
    const std::int64_t im2col =
        conv.gemm().m * conv.gemm().k * 1; // 1 byte/element.
    EXPECT_EQ(traffic.ifmapDramBytes,
              im2col * residency.streamChunks);
}

TEST(Traffic, DenseLayerNeverChunks)
{
    // m = 1: cross-fold psums always fit.
    const nn::Layer fc = nn::dense("fc", 12288, 2048);
    for (sys::Dataflow dataflow :
         {sys::Dataflow::WeightStationary,
          sys::Dataflow::InputStationary}) {
        const auto config = makeConfig(32, 32, 32, dataflow);
        const auto residency = sys::analyzeResidency(fc, config);
        if (dataflow == sys::Dataflow::WeightStationary) {
            EXPECT_TRUE(residency.psumOnChip);
        }
        const auto schedule = sys::scheduleGemm(fc.gemm(), config);
        const auto traffic = sys::computeTraffic(fc, schedule, config);
        EXPECT_EQ(traffic.psumDramBytes, 0);
    }
}

TEST(Traffic, MoreSramNeverIncreasesDramTraffic)
{
    const nn::Layer conv = nn::conv2d("c", 128, 128, 16, 3, 2, 64);
    for (sys::Dataflow dataflow :
         {sys::Dataflow::WeightStationary,
          sys::Dataflow::OutputStationary,
          sys::Dataflow::InputStationary}) {
        std::int64_t prev = -1;
        for (int sram_kb : {32, 64, 128, 256, 512, 1024, 2048, 4096}) {
            const auto config = makeConfig(16, 16, sram_kb, dataflow);
            const auto schedule = sys::scheduleGemm(conv.gemm(), config);
            const auto traffic =
                sys::computeTraffic(conv, schedule, config);
            if (prev >= 0) {
                EXPECT_LE(traffic.totalDramBytes(), prev)
                    << sys::dataflowName(dataflow) << " " << sram_kb;
            }
            prev = traffic.totalDramBytes();
        }
    }
}
