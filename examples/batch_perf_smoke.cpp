/**
 * @file
 * CI perf smoke for the raw-speed analytical core: times the same
 * 128-point cold-cache workload as BM_BatchEvaluate128 through both
 * AnalyticalBackend paths - the scalar reference (evaluate() per point)
 * and the batched SoA kernel (evaluateBatch()) - and exits nonzero if
 * the batch path is not strictly faster. A regression that lands the
 * batch pipeline back on per-point recomputation (or breaks its
 * allocation-free steady state badly enough to lose to scalar) fails CI
 * rather than silently eating the DSE throughput budget.
 *
 * Also asserts the two paths agree bit-for-bit on every objective, so
 * the smoke can never pass on a fast-but-wrong kernel.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "airlearning/trainer.h"
#include "dse/eval_backend.h"
#include "dse/design_space.h"
#include "nn/e2e_template.h"
#include "util/rng.h"

using namespace autopilot;

namespace
{

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main()
{
    airlearning::TrainerConfig trainerConfig;
    trainerConfig.validationEpisodes = 20;
    const airlearning::Trainer trainer(trainerConfig);
    airlearning::PolicyDatabase database;
    trainer.trainAll(nn::PolicySpace(), airlearning::ObstacleDensity::Dense,
                     database);

    const dse::BackendContext context{
        &database, airlearning::ObstacleDensity::Dense, {}};
    dse::AnalyticalBackend backend(context);

    dse::DesignSpace space;
    util::Rng rng(0xBA7C4u);
    std::vector<dse::DesignPoint> points;
    for (int i = 0; i < 128; ++i)
        points.push_back(space.decode(space.randomEncoding(rng)));

    // Warm up both paths (plan cache, thread-local arena, page faults).
    std::vector<dse::Evaluation> batch(points.size());
    backend.evaluateBatch(points, nullptr,
                          [&batch](std::size_t i, dse::Evaluation &&e) {
                              batch[i] = std::move(e);
                          });
    std::vector<dse::Evaluation> scalar(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        scalar[i] = backend.evaluate(points[i]);

    // Correctness gate: the smoke must not reward a wrong kernel.
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (batch[i].objectives != scalar[i].objectives ||
            batch[i].npuPowerW != scalar[i].npuPowerW ||
            batch[i].fps != scalar[i].fps) {
            std::fprintf(stderr,
                         "batch_perf_smoke: batch/scalar mismatch at "
                         "point %zu\n",
                         i);
            return 1;
        }
    }

    // Best-of-N timing to shrug off CI noise.
    constexpr int kRepeats = 5;
    double scalarBest = 1e30;
    double batchBest = 1e30;
    for (int r = 0; r < kRepeats; ++r) {
        double start = nowSeconds();
        for (const dse::DesignPoint &point : points)
            backend.evaluate(point);
        scalarBest = std::min(scalarBest, nowSeconds() - start);

        start = nowSeconds();
        backend.evaluateBatch(points, nullptr,
                              [](std::size_t, dse::Evaluation &&) {});
        batchBest = std::min(batchBest, nowSeconds() - start);
    }

    const double speedup = scalarBest / batchBest;
    std::printf("batch_perf_smoke: scalar %.3f ms, batch %.3f ms, "
                "speedup %.1fx over %zu points\n",
                scalarBest * 1e3, batchBest * 1e3, speedup,
                points.size());

    if (batchBest >= scalarBest) {
        std::fprintf(stderr,
                     "batch_perf_smoke: FAIL - batched evaluation is "
                     "not faster than the scalar path\n");
        return 1;
    }
    std::printf("batch_perf_smoke: OK\n");
    return 0;
}
