/**
 * @file
 * Quickstart: design a DSSoC for a nano-UAV flying a dense-obstacle task.
 *
 * Runs the full three-phase AutoPilot pipeline with a small budget and
 * prints the selected algorithm/accelerator pair with its mission-level
 * performance, followed by the Section V-B strategy comparison. Takes
 * about a second on a laptop.
 */

#include <iostream>

#include "core/autopilot.h"
#include "core/report.h"

int
main()
{
    using namespace autopilot;

    core::TaskSpec task;
    task.density = airlearning::ObstacleDensity::Dense;
    task.validationEpisodes = 120; // Quick run; benches use more.
    task.dseBudget = 100;

    core::AutoPilot pilot(task);
    const uav::UavSpec vehicle = uav::zhangNano();

    std::cout << "AutoPilot quickstart: designing for " << vehicle.name
              << ", dense obstacles\n\n";

    const core::AutoPilotRun run = pilot.designFor(vehicle);
    core::printRunReport(run, std::cout);

    std::cout << "\nHow the traditional strategies would have chosen "
                 "from the same candidates:\n";
    core::printStrategyComparison(run.candidates, std::cout);
    return 0;
}
