/**
 * @file
 * Telemetry demo: run a small three-phase pipeline with the run-telemetry
 * subsystem enabled and export its artifacts.
 *
 *   telemetry_demo [trace.json] [metrics.csv] [backend]
 *
 * The optional third argument selects the Phase 2 cost-model backend
 * ("analytical" (default), "cycle", "tiered"); the tiered run is what
 * the CI smoke step uses to validate the per-backend counters.
 *
 * Writes a Chrome/Perfetto trace (open it at https://ui.perfetto.dev or
 * chrome://tracing to see the phase 1/2/3 spans and the per-evaluation
 * simulate spans across worker threads) and a flat metrics CSV, then
 * prints the run report with its telemetry summary table. The CI smoke
 * step runs this binary and validates both files parse.
 */

#include <iostream>

#include "core/autopilot.h"
#include "core/report.h"
#include "io/telemetry_export.h"
#include "util/telemetry.h"

int
main(int argc, char **argv)
{
    using namespace autopilot;

    const std::string trace_path =
        argc > 1 ? argv[1] : "autopilot_trace.json";
    const std::string metrics_path =
        argc > 2 ? argv[2] : "autopilot_metrics.csv";

    core::TaskSpec task;
    task.density = airlearning::ObstacleDensity::Dense;
    task.validationEpisodes = 40; // Tiny run: this is about the traces.
    task.dseBudget = 24;
    task.threads = 4;
    task.telemetry = true;
    if (argc > 3)
        task.backend = argv[3];

    core::AutoPilot pilot(task);
    const uav::UavSpec vehicle = uav::zhangNano();

    std::cout << "Telemetry demo: designing for " << vehicle.name
              << " with tracing on\n\n";

    const core::AutoPilotRun run = pilot.designFor(vehicle);
    core::printRunReport(run, std::cout);

    io::saveTelemetry(trace_path, metrics_path);
    std::cout << "\nWrote " << trace_path << " ("
              << util::Telemetry::instance().trace().eventCount()
              << " spans) and " << metrics_path << "\n";
    return 0;
}
