/**
 * @file
 * Mission planner: the full AutoPilot workflow a drone-fleet operator
 * would run.
 *
 * Usage: mission_planner [nano|micro|mini] [low|medium|dense]
 *
 * Designs the DSSoC for the chosen vehicle and scenario, compares it
 * against off-the-shelf boards, runs the F-1 bottleneck analyzer on the
 * result, and persists the Phase 1/2 artifacts to CSV so later runs (or
 * other vehicles) can reuse them.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/autopilot.h"
#include "core/baseline_eval.h"
#include "core/baselines.h"
#include "io/persistence.h"
#include "uav/bottleneck.h"
#include "util/logging.h"
#include "util/table.h"

using namespace autopilot;

namespace
{

uav::UavSpec
parseUav(const std::string &name)
{
    if (name == "nano")
        return uav::zhangNano();
    if (name == "micro")
        return uav::djiSpark();
    if (name == "mini")
        return uav::ascTecPelican();
    util::fatal("unknown UAV class '" + name +
                "' (use nano|micro|mini)");
}

airlearning::ObstacleDensity
parseDensity(const std::string &name)
{
    for (airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        if (airlearning::densityName(density) == name)
            return density;
    }
    util::fatal("unknown scenario '" + name +
                "' (use low|medium|dense)");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string uav_name = argc > 1 ? argv[1] : "nano";
    const std::string density_name = argc > 2 ? argv[2] : "dense";
    const uav::UavSpec vehicle = parseUav(uav_name);
    const airlearning::ObstacleDensity density =
        parseDensity(density_name);

    std::cout << "Designing a DSSoC for " << vehicle.name << " ("
              << density_name << " obstacles)\n\n";

    core::TaskSpec task;
    task.density = density;
    task.validationEpisodes = 150;
    task.dseBudget = 100;
    core::AutoPilot pilot(task);
    const core::AutoPilotRun run = pilot.designFor(vehicle);
    const core::FullSystemDesign &ap = run.selected;

    util::Table result({"metric", "AutoPilot design"});
    result.addRow({"policy", nn::policyName(ap.eval.point.policy)});
    result.addRow({"accelerator", ap.eval.point.accel.name()});
    result.addRow({"success rate",
                   util::formatDouble(ap.eval.successRate * 100, 1) +
                       " %"});
    result.addRow({"inference rate",
                   util::formatDouble(ap.eval.fps, 1) + " FPS"});
    result.addRow({"SoC power",
                   util::formatDouble(ap.eval.socPowerW, 2) + " W"});
    result.addRow({"compute payload",
                   util::formatDouble(ap.payloadGrams, 1) + " g"});
    result.addRow({"missions / charge",
                   util::formatDouble(ap.mission.numMissions, 1)});
    result.print(std::cout);

    // Bottleneck analysis of the selected system.
    const uav::BottleneckReport report = uav::analyzeBottleneck(
        vehicle, ap.payloadGrams, ap.eval.fps,
        static_cast<double>(ap.sensorFps));
    std::cout << "\nBottleneck: "
              << uav::bottleneckStageName(report.stage) << " (action "
              << util::formatDouble(report.actionThroughputHz, 1)
              << " Hz vs knee "
              << util::formatDouble(report.kneeThroughputHz, 1)
              << " Hz; removing it would buy "
              << util::formatDouble(
                     report.velocityLossFraction() * 100, 0)
              << "% velocity)\n";

    // Comparison against off-the-shelf boards.
    std::cout << "\nOff-the-shelf comparison:\n";
    util::Table compare({"platform", "FPS", "power W", "mass g",
                         "missions", "AutoPilot gain"});
    const nn::Model model = nn::buildE2EModel(ap.eval.point.policy);
    for (const core::BaselinePlatform &platform :
         {core::jetsonTx2(), core::xavierNx(), core::intelNcs(),
          core::pulpDronet()}) {
        const auto baseline =
            core::evaluateBaselineOnUav(platform, model, vehicle);
        const double missions = baseline.mission.numMissions;
        compare.addRow(
            {platform.name, util::formatDouble(baseline.fps, 1),
             util::formatDouble(baseline.computePowerW, 2),
             util::formatDouble(baseline.payloadGrams, 1),
             util::formatDouble(missions, 1),
             missions > 0.0
                 ? util::formatRatio(ap.mission.numMissions / missions)
                 : "infeasible"});
    }
    compare.print(std::cout);

    // Persist the reusable artifacts.
    {
        std::ofstream db_file("policy_database_" + density_name +
                              ".csv");
        io::writePolicyDatabase(pilot.phase1(), db_file);
        std::ofstream archive_file("dse_archive_" + density_name +
                                   ".csv");
        io::writeDseArchive(run.dseResult.archive, archive_file);
    }
    std::cout << "\nSaved policy_database_" << density_name
              << ".csv and dse_archive_" << density_name
              << ".csv for reuse.\n";
    return 0;
}
