/**
 * @file
 * Phase 1 in isolation: train and validate the full E2E template grid for
 * all three deployment scenarios and print the success-rate landscape
 * (the data behind Fig. 2b), plus each scenario's best policy.
 */

#include <iostream>

#include "airlearning/trainer.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    airlearning::TrainerConfig config;
    config.validationEpisodes = 300;
    const airlearning::Trainer trainer(config);
    const nn::PolicySpace space;

    for (airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        airlearning::PolicyDatabase db;
        trainer.trainAll(space, density, db);

        std::cout << "=== " << airlearning::densityName(density)
                  << " obstacles: success rate (%) ===\n";
        util::Table table({"layers", "f=32", "f=48", "f=64",
                           "params(M) @f=48"});
        for (int layers : space.layerChoices) {
            std::vector<std::string> row = {std::to_string(layers)};
            for (int filters : space.filterChoices) {
                nn::PolicyHyperParams params;
                params.numConvLayers = layers;
                params.numFilters = filters;
                const auto record = db.find(params, density);
                row.push_back(
                    util::formatDouble(record->successRate * 100, 1));
            }
            nn::PolicyHyperParams mid;
            mid.numConvLayers = layers;
            mid.numFilters = 48;
            row.push_back(util::formatDouble(
                static_cast<double>(db.find(mid, density)->modelParams) *
                    1e-6,
                1));
            table.addRow(row);
        }
        table.print(std::cout);

        const auto best = db.best(density);
        std::cout << "best: " << best->policyId << " at "
                  << util::formatDouble(best->successRate * 100, 1)
                  << " %\n";

        // Quality probe: the simulator must reward policy quality
        // monotonically, otherwise "training" would be meaningless.
        util::Table probe({"quality", "success %", "collide %",
                           "timeout %"});
        for (double q : {0.30, 0.45, 0.60, 0.75, 0.90}) {
            const auto cap =
                airlearning::PolicyCapability::fromQuality(q);
            const auto eval = airlearning::evaluatePolicy(
                airlearning::EnvironmentConfig::forDensity(density), cap,
                400, 99);
            probe.addRow(
                {util::formatDouble(q, 2),
                 util::formatDouble(eval.successRate() * 100, 1),
                 util::formatDouble(eval.collisions * 100.0 / 400, 1),
                 util::formatDouble(eval.timeouts * 100.0 / 400, 1)});
        }
        probe.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
