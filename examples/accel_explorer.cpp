/**
 * @file
 * Phase 2's hardware half in isolation: sweep characteristic accelerator
 * configurations for one policy network and print throughput, power,
 * energy breakdown and the implied compute payload mass - the data a
 * hardware architect inspects before committing to a design (Fig. 3b).
 */

#include <iostream>

#include "airlearning/policy.h"
#include "nn/e2e_template.h"
#include "nn/summary.h"
#include "power/mass_model.h"
#include "power/npu_power.h"
#include "power/soc_power.h"
#include "systolic/cycle_engine.h"
#include "systolic/run_report.h"
#include "util/table.h"

using namespace autopilot;

int
main()
{
    // The policy AutoPilot's front end favours for dense obstacles.
    const nn::PolicyHyperParams params =
        airlearning::bestHyperParams(airlearning::ObstacleDensity::Dense);
    const nn::Model model = nn::buildE2EModel(params);

    nn::printSummary(model, std::cout);
    std::cout << "\n";

    struct Candidate
    {
        const char *label;
        int rows, cols, sram_kb;
    };
    const Candidate candidates[] = {
        {"tiny", 8, 8, 64},       {"small", 16, 16, 128},
        {"medium", 32, 32, 256},  {"large", 64, 64, 1024},
        {"huge", 128, 128, 4096}, {"wide", 16, 256, 512},
        {"tall", 256, 16, 512},
    };

    util::Table table({"design", "array", "SRAM", "FPS", "NPU W", "SoC W",
                       "FPS/W", "payload g", "util %"});
    const power::MassModel mass_model;
    for (const Candidate &candidate : candidates) {
        systolic::AcceleratorConfig config;
        config.peRows = candidate.rows;
        config.peCols = candidate.cols;
        config.ifmapSramKb = candidate.sram_kb;
        config.filterSramKb = candidate.sram_kb;
        config.ofmapSramKb = candidate.sram_kb;

        const systolic::CycleEngine engine(config);
        const systolic::RunResult run = engine.run(model);
        const power::NpuPowerModel npu(config);
        const double npu_w = npu.averagePowerW(run);
        const double soc_w = power::socPower(npu_w).totalW();
        const double fps = run.framesPerSecond(config.clockGhz);

        table.addRow(
            {candidate.label,
             std::to_string(candidate.rows) + "x" +
                 std::to_string(candidate.cols),
             std::to_string(candidate.sram_kb) + "KB",
             util::formatDouble(fps, 1), util::formatDouble(npu_w, 2),
             util::formatDouble(soc_w, 2),
             util::formatDouble(fps / soc_w, 1),
             util::formatDouble(
                 mass_model.computePayloadGrams(npu_w), 1),
             util::formatDouble(run.peUtilization(config.peCount()) * 100,
                                1)});
    }
    table.print(std::cout);

    systolic::AcceleratorConfig config;
    config.peRows = 32;
    config.peCols = 32;
    config.ifmapSramKb = config.filterSramKb = config.ofmapSramKb = 256;
    const systolic::CycleEngine engine(config);
    const systolic::RunResult run = engine.run(model);

    std::cout << "\nPer-layer breakdown of the 'medium' design ("
              << "dominant layer: " << systolic::dominantLayer(run)
              << "):\n";
    systolic::printRunBreakdown(run, config, std::cout);

    std::cout << "\nEnergy breakdown of the 'medium' design:\n";
    const power::NpuPowerModel npu(config);
    const power::NpuPowerBreakdown breakdown = npu.estimate(run);
    util::Table bd({"component", "watts"});
    bd.addRow({"PE dynamic", util::formatDouble(breakdown.peDynamicW, 3)});
    bd.addRow({"PE leakage", util::formatDouble(breakdown.peLeakageW, 3)});
    bd.addRow({"SRAM dynamic",
               util::formatDouble(breakdown.sramDynamicW, 3)});
    bd.addRow({"SRAM leakage",
               util::formatDouble(breakdown.sramLeakageW, 3)});
    bd.addRow({"DRAM", util::formatDouble(breakdown.dramW, 3)});
    bd.addRow({"controller", util::formatDouble(breakdown.controllerW, 3)});
    bd.addRow({"total", util::formatDouble(breakdown.totalW(), 3)});
    bd.print(std::cout);
    return 0;
}
