/**
 * @file
 * Campaign runner CLI: journaled, resumable multi-task AutoPilot runs.
 *
 * Default campaign: one task per obstacle density for the nano-UAV,
 * each with its own checkpoint subdirectory under --dir. Kill it at any
 * point and re-run with --resume to continue from the last committed
 * batch; the final report is byte-identical to an uninterrupted run.
 *
 *   campaign_runner --dir /tmp/campaign          # fresh run
 *   campaign_runner --dir /tmp/campaign --resume # continue after kill
 *
 * Service mode: `campaign_runner --serve ROOT` runs the file-drop
 * campaign daemon (runner::CampaignService) instead. Drop one
 * submission JSON per campaign into ROOT/inbox/ (write elsewhere, then
 * rename into place); results appear in ROOT/results/, live status in
 * ROOT/status/. Many campaigns run concurrently over one shared
 * work-stealing pool with per-tenant fair-share admission. SIGINT or
 * SIGTERM drains: running campaigns stop at the next batch boundary
 * and resume byte-identically on the next --serve. SIGKILL is also
 * safe - at most one in-flight batch per campaign is recomputed.
 *
 *   campaign_runner --serve /tmp/svc --max-active 2 --workers 4
 *   cat > /tmp/sub.json <<'EOF'
 *   {"tenant": "alice", "density": "low", "budget": 30}
 *   EOF
 *   mv /tmp/sub.json /tmp/svc/inbox/alice-low.json
 *
 * Flags (service mode):
 *   --serve ROOT       Service root directory (created on demand).
 *   --max-active N     Campaigns running at once       (default 2)
 *   --workers N        Shared pool threads; 0 = hw     (default 0)
 *   --poll S           Inbox scan interval, seconds    (default 0.2)
 *   --max-campaigns N  Exit after N terminal campaigns (default: run
 *                      until signalled)
 *
 * Flags (classic one-shot mode):
 *   --dir DIR          Campaign root (checkpoints/journals); required
 *                      for --resume. Default: no checkpointing.
 *   --resume [DIR]     Warm-start from DIR (or the --dir value).
 *   --optimizer NAME   bo | nsga2 | sa | random     (default bo)
 *   --backend NAME     analytical | quantized | cycle | tiered |
 *                      contention | dram
 *                      (default analytical)
 *   --camera-mbps X    Background camera DRAM traffic, MB/s (default 0)
 *   --host-mbps X      Background host DRAM traffic, MB/s   (default 0)
 *   --npu-floor F      QoS bandwidth floor for the NPU, [0,1) (default 0)
 *   --dram-banks N     Bank count for the dram backend      (default 8)
 *   --row-policy P     open | closed row-buffer policy  (default open)
 *   --dram-timing T    "tCAS:tRCD:tRP[:tREFI:tRFC]" in cycles
 *                      (default 4:4:4:1560:36)
 *   --budget N         Phase 2 evaluation budget    (default 60)
 *   --episodes N       Phase 1 validation episodes  (default 80)
 *   --threads N        Worker threads per task      (default 1)
 *   --concurrency N    Tasks run at once            (default 1)
 *   --deadline S       Per-task deadline in seconds (default off)
 *   --airframe NAME    quad | fixed-wing: fly every task on this
 *                      airframe (default quad; single-scenario
 *                      shorthand for --mission-mix)
 *   --mission-mix FILE JSON array of weighted (airframe, mission)
 *                      scenarios (see runner::parseMissionMix); the
 *                      weighted missions-per-charge across the mix
 *                      becomes the selection objective. Mutually
 *                      exclusive with --airframe.
 *   --precision LIST   Comma-separated operand widths searched by
 *                      Phase 2: subset of int8,fp16,fp32 (default
 *                      int8). More than one width adds precision as an
 *                      8th design dimension and switches the archive/
 *                      journal to the precision-labelled layout.
 *
 * The contention flags describe camera/host streams sharing the NPU's
 * DRAM channel (see systolic::ContentionProfile); they shape the
 * "contention" backend and the "tiered" verify tier, and are part of
 * the task fingerprint, so a journal resumes only under the profile it
 * was written with.
 *
 * With --backend dram (or --backend tiered plus any --dram-* flag) the
 * same camera/host rates instead program bank-level traffic generators
 * (see dram::DramSpec): the camera walks rows linearly, the host jumps
 * randomly, and the flat contention surcharge stays zero so bytes are
 * never charged twice. The dram spec is folded into the fingerprint the
 * same way.
 */

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dram/config.h"
#include "runner/campaign.h"
#include "runner/service.h"
#include "systolic/config.h"
#include "uav/uav_spec.h"
#include "util/cancel.h"
#include "util/logging.h"

namespace
{

[[noreturn]] void
usage(const std::string &error)
{
    std::cerr << "campaign_runner: " << error << "\n"
              << "usage: campaign_runner [--dir DIR] [--resume [DIR]]\n"
              << "         [--optimizer bo|nsga2|sa|random]\n"
              << "         [--backend analytical|quantized|cycle|tiered|"
                 "contention|dram]\n"
              << "         [--camera-mbps X] [--host-mbps X]"
                 " [--npu-floor F]\n"
              << "         [--dram-banks N] [--row-policy open|closed]\n"
              << "         [--dram-timing tCAS:tRCD:tRP[:tREFI:tRFC]]\n"
              << "         [--budget N] [--episodes N] [--threads N]\n"
              << "         [--concurrency N] [--deadline SECONDS]\n"
              << "         [--airframe quad|fixed-wing]"
                 " [--mission-mix FILE]\n"
              << "         [--precision int8[,fp16[,fp32]]]\n"
              << "   or: campaign_runner --serve ROOT [--max-active N]\n"
              << "         [--workers N] [--poll SECONDS]"
                 " [--max-campaigns N]\n";
    std::exit(2);
}

/// Drain source flipped by SIGINT/SIGTERM. cancel() is a lock-free
/// atomic store, so calling it from a signal handler is safe.
autopilot::util::CancelSource *serviceStop = nullptr;

void
onDrainSignal(int)
{
    if (serviceStop != nullptr)
        serviceStop->cancel();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace autopilot;

    std::string dir;
    std::string serveRoot;
    int maxActive = 2;
    int workers = 0;
    double pollSeconds = 0.2;
    int maxCampaigns = 0;
    bool resume = false;
    std::string optimizer = "bo";
    std::string backend = "analytical";
    int budget = 60;
    int episodes = 80;
    int threads = 1;
    int concurrency = 1;
    double deadlineSeconds = 0.0;
    double cameraMbps = 0.0;
    double hostMbps = 0.0;
    double npuFloor = 0.0;
    dram::DramTiming dramTiming;
    bool hasDramFlag = false;
    std::string airframeName;
    std::string missionMixFile;
    std::vector<int> precisions = {1};

    const std::vector<std::string> args(argv + 1, argv + argc);
    auto value = [&](std::size_t &i) -> const std::string & {
        if (i + 1 >= args.size())
            usage("missing value for " + args[i]);
        return args[++i];
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--dir") {
            dir = value(i);
        } else if (arg == "--serve") {
            serveRoot = value(i);
        } else if (arg == "--max-active") {
            maxActive = std::atoi(value(i).c_str());
        } else if (arg == "--workers") {
            workers = std::atoi(value(i).c_str());
        } else if (arg == "--poll") {
            pollSeconds = std::atof(value(i).c_str());
        } else if (arg == "--max-campaigns") {
            maxCampaigns = std::atoi(value(i).c_str());
        } else if (arg == "--resume") {
            resume = true;
            // Optional value: --resume DIR names the campaign root.
            if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0)
                dir = args[++i];
        } else if (arg == "--optimizer") {
            optimizer = value(i);
        } else if (arg == "--backend") {
            backend = value(i);
        } else if (arg == "--budget") {
            budget = std::atoi(value(i).c_str());
        } else if (arg == "--episodes") {
            episodes = std::atoi(value(i).c_str());
        } else if (arg == "--threads") {
            threads = std::atoi(value(i).c_str());
        } else if (arg == "--concurrency") {
            concurrency = std::atoi(value(i).c_str());
        } else if (arg == "--deadline") {
            deadlineSeconds = std::atof(value(i).c_str());
        } else if (arg == "--camera-mbps") {
            cameraMbps = std::atof(value(i).c_str());
        } else if (arg == "--host-mbps") {
            hostMbps = std::atof(value(i).c_str());
        } else if (arg == "--npu-floor") {
            npuFloor = std::atof(value(i).c_str());
        } else if (arg == "--dram-banks") {
            dramTiming.banks = std::atoi(value(i).c_str());
            hasDramFlag = true;
        } else if (arg == "--row-policy") {
            if (!dram::rowPolicyFromName(value(i),
                                         dramTiming.rowPolicy))
                usage("unknown row policy '" + args[i] +
                      "' (want open|closed)");
            hasDramFlag = true;
        } else if (arg == "--dram-timing") {
            std::string error;
            if (!dram::parseDramTiming(value(i), dramTiming, error))
                usage("bad --dram-timing: " + error);
            hasDramFlag = true;
        } else if (arg == "--airframe") {
            airframeName = value(i);
        } else if (arg == "--mission-mix") {
            missionMixFile = value(i);
        } else if (arg == "--precision") {
            std::string error;
            if (!systolic::parsePrecisionList(value(i), precisions,
                                              error))
                usage("bad --precision: " + error);
        } else {
            usage("unknown flag '" + arg + "'");
        }
    }
    if (resume && dir.empty())
        usage("--resume needs a campaign directory (--resume DIR)");
    if (cameraMbps < 0.0 || hostMbps < 0.0)
        usage("contention rates must be >= 0");
    if (!airframeName.empty() && !missionMixFile.empty())
        usage("--airframe and --mission-mix are mutually exclusive");

    // Scenario set shared by every classic-mode task. --airframe quad
    // keeps the mix empty (the legacy default, byte-identical results).
    uav::MissionMix missionMix;
    if (!airframeName.empty()) {
        uav::AirframeKind kind = uav::AirframeKind::Quadrotor;
        if (!uav::airframeKindFromName(airframeName, kind))
            usage("unknown airframe '" + airframeName +
                  "' (want quad|fixed-wing)");
        if (kind != uav::AirframeKind::Quadrotor) {
            uav::MissionScenario scenario =
                uav::defaultMissionScenario();
            scenario.airframe = kind;
            missionMix.scenarios = {scenario};
        }
    }
    if (!missionMixFile.empty()) {
        std::ifstream in(missionMixFile, std::ios::binary);
        if (!in)
            usage("cannot open mission-mix file '" + missionMixFile +
                  "'");
        std::ostringstream buffer;
        buffer << in.rdbuf();
        std::string error;
        if (!runner::parseMissionMix(buffer.str(), missionMix, error))
            usage("bad mission mix '" + missionMixFile + "': " + error);
    }

    if (!serveRoot.empty()) {
        runner::ServiceConfig service;
        service.rootDir = serveRoot;
        service.maxActiveCampaigns = maxActive;
        service.poolThreads = workers;
        service.pollSeconds = pollSeconds;
        service.maxCampaigns = maxCampaigns;

        util::CancelSource stop;
        service.stop = stop.token();
        serviceStop = &stop;
        std::signal(SIGINT, onDrainSignal);
        std::signal(SIGTERM, onDrainSignal);

        std::cout << "Campaign service on " << serveRoot << " (max "
                  << maxActive << " active, pool "
                  << (workers == 0 ? "hw" : std::to_string(workers))
                  << " threads)\n";
        runner::CampaignService daemon(service);
        const runner::ServiceReport outcome = daemon.serve();
        serviceStop = nullptr;

        std::cout << "Service: " << outcome.admitted << " admitted, "
                  << outcome.completed << " completed, "
                  << outcome.failed << " failed, " << outcome.rejected
                  << " rejected, " << outcome.interrupted
                  << " interrupted\n";
        return outcome.failed == 0 ? 0 : 1;
    }

    // --backend dram (or tiered with any --dram-* flag) turns the
    // camera/host rates into bank-level traffic generators; otherwise
    // they stay the flat contention surcharge. Never both - the same
    // bytes must not be charged twice.
    const bool wantsDram =
        backend == "dram" || (hasDramFlag && backend == "tiered");
    if (hasDramFlag && !wantsDram)
        usage("--dram-* flags require --backend dram or tiered");
    dram::DramSpec dramSpec;
    systolic::ContentionProfile contention;
    if (wantsDram) {
        dramSpec =
            dram::uavDramSpec(dramTiming, cameraMbps * 1e6,
                              hostMbps * 1e6);
        const std::string reason = dramSpec.infeasibleReason();
        if (!reason.empty())
            usage("infeasible dram channel: " + reason);
    } else {
        contention.cameraBytesPerSec = cameraMbps * 1e6;
        contention.hostBytesPerSec = hostMbps * 1e6;
        contention.npuFloorFraction = npuFloor;
    }

    runner::CampaignConfig config;
    config.rootDir = dir;
    config.resume = resume;
    config.concurrency = concurrency;

    // One task per obstacle density: the paper's scenario sweep, each
    // journaled independently so a kill loses at most one batch per
    // task.
    std::vector<runner::CampaignTask> tasks;
    for (airlearning::ObstacleDensity density :
         airlearning::allDensities()) {
        runner::CampaignTask task;
        task.name = airlearning::densityName(density);
        task.spec.density = density;
        task.spec.validationEpisodes = episodes;
        task.spec.dseBudget = budget;
        task.spec.threads = threads;
        task.spec.backend = backend;
        task.spec.contention = contention;
        task.spec.dram = dramSpec;
        task.spec.optimizer = optimizer;
        task.spec.missionMix = missionMix;
        task.spec.precisions = precisions;
        task.uav = uav::zhangNano();
        task.deadlineSeconds = deadlineSeconds;
        tasks.push_back(task);
    }

    std::cout << "Campaign: " << tasks.size() << " tasks (optimizer "
              << optimizer << ", backend " << backend << ", budget "
              << budget << ")";
    if (contention.enabled())
        std::cout << " under " << contention.totalBytesPerSec() / 1e6
                  << " MB/s background DRAM traffic";
    if (dramSpec.enabled())
        std::cout << " under "
                  << dramSpec.backgroundBytesPerSec() / 1e6
                  << " MB/s bank-level traffic ("
                  << dramSpec.timing.banks << " banks, "
                  << dram::rowPolicyName(dramSpec.timing.rowPolicy)
                  << "-row)";
    if (!missionMix.isDefault())
        std::cout << ", mission mix '" << missionMix.tag() << "'";
    if (precisions.size() > 1)
        std::cout << ", precision "
                  << systolic::formatPrecisionList(precisions);
    std::cout << (dir.empty() ? ""
                              : (resume ? ", resuming" : ", journaled"))
              << "\n\n";

    runner::CampaignRunner campaignRunner(config);
    const runner::CampaignReport report = campaignRunner.run(tasks);
    printCampaignReport(report, std::cout);

    return report.failedCount() == 0 ? 0 : 1;
}
