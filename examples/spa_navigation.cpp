/**
 * @file
 * SPA pipeline walkthrough: generate a dense-obstacle environment, run
 * one Sense-Plan-Act episode, and render the environment plus the flown
 * trajectory as ASCII art. Then sweep the decision rate to show how
 * compute speed converts into safety - the coupling AutoPilot's Phase 3
 * exploits.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "airlearning/environment.h"
#include "spa/pipeline.h"
#include "util/table.h"

using namespace autopilot;

namespace
{

/** Render the true environment plus a trajectory as ASCII. */
void
renderEpisode(const airlearning::Environment &env,
              const std::vector<spa::TrajectoryPoint> &trajectory)
{
    const int size = 40; // Character cells per side.
    const double scale = env.arenaSize / size;
    std::vector<std::string> canvas(size, std::string(size, '.'));

    auto plot = [&](double x, double y, char glyph, bool force) {
        const int cx =
            std::clamp(static_cast<int>(x / scale), 0, size - 1);
        const int cy =
            std::clamp(static_cast<int>(y / scale), 0, size - 1);
        char &cell = canvas[size - 1 - cy][cx];
        if (force || cell == '.')
            cell = glyph;
    };

    for (const airlearning::Obstacle &obstacle : env.obstacles) {
        const int span =
            static_cast<int>(obstacle.radius / scale) + 1;
        for (int dy = -span; dy <= span; ++dy) {
            for (int dx = -span; dx <= span; ++dx) {
                const double px = obstacle.x + dx * scale;
                const double py = obstacle.y + dy * scale;
                if (std::hypot(px - obstacle.x, py - obstacle.y) <=
                    obstacle.radius)
                    plot(px, py, obstacle.camouflaged ? 'c' : '#',
                         true);
            }
        }
    }
    for (const spa::TrajectoryPoint &point : trajectory)
        plot(point.x, point.y, '*', false);
    plot(env.start.x, env.start.y, 'S', true);
    plot(env.goal.x, env.goal.y, 'G', true);

    for (const std::string &row : canvas)
        std::cout << row << "\n";
}

} // namespace

int
main()
{
    const auto env_config = airlearning::EnvironmentConfig::forDensity(
        airlearning::ObstacleDensity::Dense);
    const airlearning::EnvironmentGenerator generator(env_config);
    util::Rng env_rng(2026);
    const airlearning::Environment env = generator.generate(env_rng);

    spa::SpaConfig config;
    config.decisionRateHz = 10.0;

    util::Rng episode_rng(77);
    spa::SpaEpisodeStats stats;
    std::vector<spa::TrajectoryPoint> trajectory;
    const auto result = spa::runSpaEpisode(env, config, episode_rng,
                                           &stats, &trajectory);

    std::cout << "One SPA episode (10 Hz decisions, dense obstacles): ";
    switch (result.outcome) {
      case airlearning::EpisodeOutcome::Success:
        std::cout << "SUCCESS";
        break;
      case airlearning::EpisodeOutcome::Collision:
        std::cout << "COLLISION";
        break;
      case airlearning::EpisodeOutcome::Timeout:
        std::cout << "TIMEOUT";
        break;
    }
    std::cout << " after " << result.steps << " steps, path "
              << util::formatDouble(result.pathLengthM, 1)
              << " m, min clearance "
              << util::formatDouble(result.minClearanceM, 2) << " m\n";
    std::cout << "Compute: " << stats.decisions << " decisions, "
              << stats.replans << " replans, " << stats.expandedNodes
              << " A* expansions, " << stats.mapUpdates
              << " map updates\n\n";

    renderEpisode(env, trajectory);
    std::cout << "\n('#' obstacle, 'c' camouflaged obstacle, '*' flown "
                 "path, S start, G goal)\n\n";

    std::cout << "Decision rate vs outcome (300 episodes each):\n";
    util::Table sweep({"decision Hz", "success %", "collide %",
                       "mean path m"});
    for (double rate : {2.0, 5.0, 10.0, 20.0, 40.0}) {
        spa::SpaConfig swept = config;
        swept.decisionRateHz = rate;
        const auto evaluation =
            spa::evaluateSpa(env_config, swept, 300, 4242);
        sweep.addRow(
            {util::formatDouble(rate, 0),
             util::formatDouble(evaluation.successRate() * 100, 1),
             util::formatDouble(
                 evaluation.collisions * 100.0 / evaluation.episodes,
                 1),
             util::formatDouble(evaluation.meanPathLengthM, 1)});
    }
    sweep.print(std::cout);
    return 0;
}
